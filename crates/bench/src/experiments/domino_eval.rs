//! Domino evaluation experiments (paper §4.2): Fig. 10, Table 2, Table 4.
//!
//! Runs Domino over commercial-cell and private-cell sessions separately —
//! the paper reports each statistic "distinguishing between commercial
//! (blue) and private (red) 5G cells".

use std::fmt::Write as _;

use domino_core::{
    render_chain_ratio_table, render_conditional_table, render_frequency_table, ChainStats, Domino,
};
use telemetry::CellClass;

use domino_sweep::{run_sweep, SweepOptions};
use scenarios::{all_cells, SessionSpec};

use crate::util::session_cfg;

/// Analyses all four cells in parallel (streaming analyzer per worker) and
/// aggregates stats per cell class, in spec order.
fn class_stats() -> (Domino, ChainStats, ChainStats) {
    let domino = Domino::with_defaults();
    let specs: Vec<SessionSpec> = all_cells()
        .into_iter()
        .enumerate()
        .map(|(i, cell)| SessionSpec::cell(cell, session_cfg(4000 + i as u64)))
        .collect();
    let report = run_sweep(&specs, &domino, &SweepOptions::default());
    let commercial = report.aggregate_where(|o| o.meta.cell_class == CellClass::Commercial);
    let private = report.aggregate_where(|o| o.meta.cell_class == CellClass::Private);
    (domino, commercial, private)
}

/// Fig. 10 — absolute occurrence frequency of causes and consequences.
pub fn fig10() -> String {
    let (domino, commercial, private) = class_stats();
    let mut out =
        String::from("Fig. 10 — 5G cause and VCA consequence occurrence frequency (per minute)\n");
    let _ = writeln!(out, "### Commercial 5G");
    out.push_str(&render_frequency_table(domino.graph(), &commercial));
    let _ = writeln!(out, "### Private 5G");
    out.push_str(&render_frequency_table(domino.graph(), &private));
    out
}

/// Table 2 — conditional probability of causes given each consequence.
pub fn table2() -> String {
    let (domino, commercial, private) = class_stats();
    let mut out = String::from("Table 2 — P(cause | consequence)\n");
    let _ = writeln!(out, "### Commercial 5G");
    out.push_str(&render_conditional_table(domino.graph(), &commercial));
    let _ = writeln!(out, "### Private 5G");
    out.push_str(&render_conditional_table(domino.graph(), &private));
    out
}

/// Table 4 — each chain's ratio over all detected chains.
pub fn table4() -> String {
    let (domino, commercial, private) = class_stats();
    let mut out = String::from("Table 4 — chain ratio over all detected chains\n");
    let _ = writeln!(out, "### Commercial 5G");
    out.push_str(&render_chain_ratio_table(domino.graph(), &commercial));
    let _ = writeln!(out, "### Private 5G");
    out.push_str(&render_chain_ratio_table(domino.graph(), &private));
    out
}
