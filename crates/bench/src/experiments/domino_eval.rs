//! Domino evaluation experiments (paper §4.2): Fig. 10, Table 2, Table 4.
//!
//! Runs Domino over commercial-cell and private-cell sessions separately —
//! the paper reports each statistic "distinguishing between commercial
//! (blue) and private (red) 5G cells".

use std::fmt::Write as _;

use domino_core::{
    render_chain_ratio_table, render_conditional_table, render_frequency_table, ChainStats,
    Domino,
};
use telemetry::CellClass;

use scenarios::{all_cells, run_cell_session};

use crate::util::session_cfg;

/// Analyses all four cells and aggregates stats per cell class.
fn class_stats() -> (Domino, ChainStats, ChainStats) {
    let domino = Domino::with_defaults();
    let mut commercial = ChainStats::default();
    let mut private = ChainStats::default();
    for (i, cell) in all_cells().into_iter().enumerate() {
        let class = cell.class;
        let cfg = session_cfg(4000 + i as u64);
        let bundle = run_cell_session(cell, &cfg, |_| {});
        let analysis = domino.analyze(&bundle);
        let stats = ChainStats::compute(domino.graph(), &analysis);
        match class {
            CellClass::Commercial => commercial.merge(&stats),
            CellClass::Private => private.merge(&stats),
        }
    }
    (domino, commercial, private)
}

/// Fig. 10 — absolute occurrence frequency of causes and consequences.
pub fn fig10() -> String {
    let (domino, commercial, private) = class_stats();
    let mut out =
        String::from("Fig. 10 — 5G cause and VCA consequence occurrence frequency (per minute)\n");
    let _ = writeln!(out, "### Commercial 5G");
    out.push_str(&render_frequency_table(domino.graph(), &commercial));
    let _ = writeln!(out, "### Private 5G");
    out.push_str(&render_frequency_table(domino.graph(), &private));
    out
}

/// Table 2 — conditional probability of causes given each consequence.
pub fn table2() -> String {
    let (domino, commercial, private) = class_stats();
    let mut out = String::from("Table 2 — P(cause | consequence)\n");
    let _ = writeln!(out, "### Commercial 5G");
    out.push_str(&render_conditional_table(domino.graph(), &commercial));
    let _ = writeln!(out, "### Private 5G");
    out.push_str(&render_conditional_table(domino.graph(), &private));
    out
}

/// Table 4 — each chain's ratio over all detected chains.
pub fn table4() -> String {
    let (domino, commercial, private) = class_stats();
    let mut out = String::from("Table 4 — chain ratio over all detected chains\n");
    let _ = writeln!(out, "### Commercial 5G");
    out.push_str(&render_chain_ratio_table(domino.graph(), &commercial));
    let _ = writeln!(out, "### Private 5G");
    out.push_str(&render_chain_ratio_table(domino.graph(), &private));
    out
}
