//! Experiment implementations, grouped by paper section.

pub mod ablations;
pub mod consequences;
pub mod domino_eval;
pub mod longitudinal;
pub mod mechanisms;
pub mod motivation;
