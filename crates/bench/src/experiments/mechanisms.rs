//! 5G mechanism trace figures (paper §5): Figs. 12–14, 16–19.
//!
//! Each experiment scripts the exact condition the paper's trace captured
//! (deep fade, cross-traffic burst, forced HARQ/RLC failures, RRC release)
//! and prints the same time-series columns.

use std::fmt::Write as _;

use simcore::{SimDuration, SimTime};
use telemetry::{Direction, GnbEvent, StreamKind};

use scenarios::SessionRun;

use crate::util::{app_rate_in, mean_delay_in, phy_rate_in, prbs_in, short_session_cfg, time_bins};

fn t(secs: f64) -> SimTime {
    SimTime::from_micros((secs * 1e6) as u64)
}

/// Fig. 12 — channel degradation causes RLC buffer build-up and delay.
pub fn fig12() -> String {
    let cfg = short_session_cfg(5012, 20);
    let bundle = SessionRun::cell(scenarios::amarisoft(), &cfg)
        .script(|cell| {
            // ① channel degrades at 8 s, ④ recovers at 11 s.
            cell.script_sinr(Direction::Uplink, t(8.0), t(11.0), -1.0);
        })
        .run();
    let mut out = String::from(
        "Fig. 12 — UL channel degradation (scripted SINR drop 8–11 s)\n\
         t[s]  prb_ue/s  prb_oth/s  mcs  rate_gap[Mbps]  rlc_buf[kB]  delay[ms]\n",
    );
    let bin = SimDuration::from_millis(250);
    for (center, _) in time_bins(t(6.0), t(16.0), bin, |_, _| 0.0) {
        let from = t(center - 0.125);
        let to = t(center + 0.125);
        let (prb_ue, prb_oth) = prbs_in(&bundle, Direction::Uplink, from, to);
        let mcs = bundle
            .dci_window(from, to)
            .iter()
            .filter(|d| d.is_target_ue && d.direction == Direction::Uplink)
            .map(|d| d.mcs as f64)
            .fold((0.0, 0usize), |(s, n), m| (s + m, n + 1));
        let mcs = if mcs.1 > 0 {
            mcs.0 / mcs.1 as f64
        } else {
            f64::NAN
        };
        let gap = (app_rate_in(&bundle, Direction::Uplink, from, to)
            - phy_rate_in(&bundle, Direction::Uplink, from, to))
            / 1e6;
        let buf = bundle
            .gnb_window(from, to)
            .iter()
            .filter_map(|g| match g.event {
                GnbEvent::RlcBuffer {
                    direction: Direction::Uplink,
                    bytes,
                } => Some(bytes as f64),
                _ => None,
            })
            .fold((0.0, 0usize), |(s, n), b| (s + b, n + 1));
        let buf = if buf.1 > 0 {
            buf.0 / buf.1 as f64 / 1e3
        } else {
            0.0
        };
        let delay = mean_delay_in(&bundle, Direction::Uplink, from, to);
        let _ = writeln!(
            out,
            "{center:>5.2} {prb_ue:>9.0} {prb_oth:>10.0} {mcs:>4.1} {gap:>15.2} {buf:>12.1} {delay:>10.1}"
        );
    }
    out
}

/// Fig. 13 — DL cross traffic increases delay and degrades the GCC target.
pub fn fig13() -> String {
    let mut cfg = short_session_cfg(5013, 22);
    // The paper's DL flow was already running at a few Mbit/s when the
    // burst hit; start the wired sender high so the burst bites.
    cfg.wired_sender.start_bps = 3_500_000.0;
    let bundle = SessionRun::cell(scenarios::tmobile_fdd_15mhz_quiet(), &cfg)
        .script(|cell| {
            // ① cross traffic 8–11 s eats 96 % of PRBs.
            cell.script_cross_traffic(Direction::Downlink, t(8.0), t(11.0), 0.96);
        })
        .run();
    let mut out = String::from(
        "Fig. 13 — DL cross-traffic burst (scripted 8–11 s)\n\
         t[s]  prb_ue/s  prb_oth/s  rate_gap[Mbps]  delay[ms]  gcc_state  target[Mbps]\n",
    );
    let bin = SimDuration::from_millis(250);
    for (center, _) in time_bins(t(6.0), t(18.0), bin, |_, _| 0.0) {
        let from = t(center - 0.125);
        let to = t(center + 0.125);
        let (prb_ue, prb_oth) = prbs_in(&bundle, Direction::Downlink, from, to);
        let gap = (app_rate_in(&bundle, Direction::Downlink, from, to)
            - phy_rate_in(&bundle, Direction::Downlink, from, to))
            / 1e6;
        let delay = mean_delay_in(&bundle, Direction::Downlink, from, to);
        // The DL sender is the remote (wired) client; a bin is "overuse"
        // if any sample inside it saw the overuse state.
        let stats = bundle.app_remote_window(from, to);
        let state = if stats
            .iter()
            .any(|s| s.gcc_state == telemetry::GccNetworkState::Overuse)
        {
            "Overuse".to_string()
        } else {
            stats
                .last()
                .map(|s| format!("{:?}", s.gcc_state))
                .unwrap_or_default()
        };
        let target = stats
            .last()
            .map(|s| s.target_bitrate_bps / 1e6)
            .unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "{center:>5.2} {prb_ue:>9.0} {prb_oth:>10.0} {gap:>15.2} {delay:>10.1} {state:>10} {target:>13.2}"
        );
    }
    out
}

/// Fig. 14 — packet↔transport-block timelines showing UL delay spread.
pub fn fig14() -> String {
    let mut out =
        String::from("Fig. 14 — WebRTC packets vs PHY transport blocks (UL, 150 ms excerpts)\n");
    for (cell, seed) in [
        (scenarios::tmobile_tdd_100mhz(), 5141u64),
        (scenarios::tmobile_fdd_15mhz_quiet(), 5142),
        (scenarios::amarisoft(), 5143),
    ] {
        let name = cell.name.clone();
        let cfg = short_session_cfg(seed, 12);
        let bundle = SessionRun::cell(cell, &cfg).run();
        let from = t(10.0);
        let to = t(10.15);
        let _ = writeln!(out, "==== {name} ====");
        let _ = writeln!(out, "packets (send→recv, ms since excerpt start):");
        for p in bundle
            .packets_window(from, to)
            .iter()
            .filter(|p| p.direction == Direction::Uplink && p.stream != StreamKind::Rtcp)
        {
            let s = p.sent.saturating_since(from).as_millis_f64();
            let r = p
                .received
                .map(|x| x.saturating_since(from).as_millis_f64())
                .unwrap_or(f64::NAN);
            let kind = match p.stream {
                StreamKind::Video => "V",
                StreamKind::Audio => "A",
                StreamKind::Rtcp => "C",
            };
            let _ = writeln!(
                out,
                "  {kind} seq={:<6} {s:>7.2} -> {r:>7.2}  owd={:>6.2}",
                p.seq,
                r - s
            );
        }
        let _ = writeln!(out, "transport blocks:");
        for d in bundle
            .dci_window(from, to)
            .iter()
            .filter(|d| d.is_target_ue && d.direction == Direction::Uplink)
        {
            let _ = writeln!(
                out,
                "  TB t={:>7.2}ms tbs={:>7} bits mcs={:>2} retx={}",
                d.ts.saturating_since(from).as_millis_f64(),
                d.tbs_bits,
                d.mcs,
                d.harq_retx_idx
            );
        }
    }
    out
}

/// Fig. 16 — proactive UL grants: used vs wasted capacity (Mosolabs).
pub fn fig16() -> String {
    let cfg = short_session_cfg(5016, 15);
    let bundle = SessionRun::cell(scenarios::mosolabs(), &cfg).run();
    let mut out = String::from("Fig. 16 — Mosolabs proactive UL grants\n");
    let dci: Vec<_> = bundle
        .dci
        .iter()
        .filter(|d| d.is_target_ue && d.direction == Direction::Uplink && d.harq_retx_idx == 0)
        .collect();
    let (mut pro_used, mut pro_waste, mut req_used, mut req_waste) = (0u64, 0u64, 0u64, 0u64);
    for d in &dci {
        let used = d.used_bits.min(d.tbs_bits) as u64;
        let waste = d.tbs_bits.saturating_sub(d.used_bits) as u64;
        if d.proactive {
            pro_used += used;
            pro_waste += waste;
        } else {
            req_used += used;
            req_waste += waste;
        }
    }
    let pct = |u: u64, w: u64| {
        if u + w == 0 {
            0.0
        } else {
            100.0 * w as f64 / (u + w) as f64
        }
    };
    let _ = writeln!(
        out,
        "proactive grants: used {pro_used} bits, wasted {pro_waste} bits ({:.1}% waste)",
        pct(pro_used, pro_waste)
    );
    let _ = writeln!(
        out,
        "requested grants: used {req_used} bits, wasted {req_waste} bits ({:.1}% waste)",
        pct(req_used, req_waste)
    );
    let _ = writeln!(out, "example 80 ms window of grants:");
    let from = t(10.0);
    let to = t(10.08);
    for d in bundle
        .dci_window(from, to)
        .iter()
        .filter(|d| d.is_target_ue && d.direction == Direction::Uplink)
    {
        let _ = writeln!(
            out,
            "  t={:>6.2}ms {} tbs={:>6} used={:>6}",
            d.ts.saturating_since(from).as_millis_f64(),
            if d.proactive {
                "proactive"
            } else {
                "requested"
            },
            d.tbs_bits,
            d.used_bits
        );
    }
    out
}

/// Fig. 17 — HARQ retransmissions inflate packet delay by ≈ one HARQ RTT.
pub fn fig17() -> String {
    let cfg = short_session_cfg(5017, 16);
    let clean = SessionRun::cell(scenarios::amarisoft_ideal(), &cfg).run();
    let harq = SessionRun::cell(scenarios::amarisoft_ideal(), &cfg)
        .script(|cell| {
            // Initial attempts fail in 10–12 s; first retransmission succeeds.
            cell.script_harq_failures(Direction::Uplink, t(10.0), t(12.0), 1);
        })
        .run();
    let base = mean_delay_in(&clean, Direction::Uplink, t(10.0), t(12.0));
    let with = mean_delay_in(&harq, Direction::Uplink, t(10.0), t(12.0));
    let retx_count = harq
        .dci_window(t(10.0), t(12.0))
        .iter()
        .filter(|d| d.is_target_ue && d.direction == Direction::Uplink && d.harq_retx_idx > 0)
        .count();
    let mut out =
        String::from("Fig. 17 — HARQ retransmission delay inflation (Amarisoft, RTT = 10 ms)\n");
    let _ = writeln!(out, "mean UL delay without failures : {base:>7.2} ms");
    let _ = writeln!(out, "mean UL delay with forced HARQ : {with:>7.2} ms");
    let _ = writeln!(
        out,
        "inflation                      : {:>7.2} ms (expect ≈ +10 ms)",
        with - base
    );
    let _ = writeln!(out, "HARQ retransmissions in window : {retx_count}");
    out
}

/// Fig. 18 — RLC retransmission: ≈105 ms inflation and an HoL burst.
pub fn fig18() -> String {
    let cfg = short_session_cfg(5018, 16);
    let bundle = SessionRun::cell(scenarios::amarisoft_ideal(), &cfg)
        .script(|cell| {
            // One TB dies through all 4 HARQ attempts starting at 10 s.
            cell.script_harq_failures(Direction::Uplink, t(10.0), t(10.035), 4);
        })
        .run();
    let mut out = String::from("Fig. 18 — RLC retransmission and head-of-line blocking\n");
    // Find the RLC retx event.
    let rlc: Vec<_> = bundle
        .gnb
        .iter()
        .filter(|g| matches!(g.event, GnbEvent::RlcRetx { .. }))
        .collect();
    let _ = writeln!(out, "gNB log RLC retransmissions: {}", rlc.len());
    // Delay profile around the event: packets sent 9.9–10.4 s.
    let mut blocked = 0usize;
    let mut max_delay: f64 = 0.0;
    let mut release_cluster: Vec<f64> = Vec::new();
    for p in bundle
        .packets_window(t(9.9), t(10.4))
        .iter()
        .filter(|p| p.direction == Direction::Uplink && p.stream != StreamKind::Rtcp)
    {
        if let Some(d) = p.one_way_delay() {
            let ms = d.as_millis_f64();
            max_delay = max_delay.max(ms);
            if ms > 60.0 {
                blocked += 1;
                if let Some(r) = p.received {
                    release_cluster.push(r.as_millis_f64());
                }
            }
        }
    }
    release_cluster.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let cluster_span = release_cluster
        .last()
        .zip(release_cluster.first())
        .map(|(l, f)| l - f)
        .unwrap_or(0.0);
    let _ = writeln!(
        out,
        "max packet delay near event  : {max_delay:>7.1} ms (expect ≈ 105 ms)"
    );
    let _ = writeln!(out, "HoL-blocked packets (>60 ms) : {blocked}");
    let _ = writeln!(
        out,
        "release-burst span           : {cluster_span:>7.1} ms (near-identical receive times)"
    );
    out
}

/// Fig. 19 — RRC release halts transmission for ≈300 ms; delay spikes.
pub fn fig19() -> String {
    let cfg = short_session_cfg(5019, 18);
    let bundle = SessionRun::cell(scenarios::tmobile_fdd_15mhz_quiet(), &cfg)
        .script(|cell| {
            cell.script_rrc_release(t(10.0));
        })
        .run();
    let mut out = String::from("Fig. 19 — RRC state transition (scripted release at 10 s)\n");
    // RNTI change visible in DCI.
    let rntis: Vec<u32> = {
        let mut seen = Vec::new();
        for d in bundle.dci.iter().filter(|d| d.is_target_ue) {
            if seen.last() != Some(&d.rnti) {
                seen.push(d.rnti);
            }
        }
        seen
    };
    let _ = writeln!(out, "observed RNTIs: {rntis:?}");
    // Scheduling gap around the release.
    let mut last_before = SimTime::ZERO;
    let mut first_after: Option<SimTime> = None;
    for d in bundle.dci.iter().filter(|d| d.is_target_ue) {
        if d.ts < t(10.0) {
            last_before = last_before.max(d.ts);
        } else if first_after.is_none() {
            first_after = Some(d.ts);
        }
    }
    if let Some(fa) = first_after {
        let _ = writeln!(
            out,
            "PHY transmission gap: {:.0} ms (expect ≈ 300 ms)",
            fa.saturating_since(last_before).as_millis_f64()
        );
    }
    let _ = writeln!(out, "t[s]  ul_delay[ms]");
    for (center, _) in time_bins(t(9.0), t(13.0), SimDuration::from_millis(250), |_, _| 0.0) {
        let d = mean_delay_in(
            &bundle,
            Direction::Uplink,
            t(center - 0.125),
            t(center + 0.125),
        );
        let _ = writeln!(out, "{center:>5.2} {d:>10.1}");
    }
    out
}
