//! Motivation experiments (paper §2): Figs. 2–6 and Table 1.

use std::fmt::Write as _;

use telemetry::Direction;

use scenarios::{
    all_cells, generate_campus_dataset, AccessType, BaselineAccess, CampusDatasetSize, SessionRun,
    ZoomQosRecord,
};

use crate::util::{delay_samples, print_cdf, session_cfg};

/// Fig. 2 — one-way packet delay, 5G vs wired, UL and DL.
pub fn fig2() -> String {
    let cfg = session_cfg(2001);
    let cell = SessionRun::cell(scenarios::tmobile_fdd_15mhz(), &cfg).run();
    let wired = SessionRun::baseline(BaselineAccess::Wired, &cfg).run();
    let mut out = String::from("Fig. 2 — one-way delay [ms] CDF: 5G vs wired\n");
    print_cdf(
        &mut out,
        "Uplink / Cellular",
        delay_samples(&cell, Direction::Uplink, true),
    );
    print_cdf(
        &mut out,
        "Uplink / Wired",
        delay_samples(&wired, Direction::Uplink, true),
    );
    print_cdf(
        &mut out,
        "Downlink / Cellular",
        delay_samples(&cell, Direction::Downlink, true),
    );
    print_cdf(
        &mut out,
        "Downlink / Wired",
        delay_samples(&wired, Direction::Downlink, true),
    );
    out
}

/// Fig. 3 — minimum jitter-buffer delay CDFs with the ITU-T interactivity
/// thresholds (150 ms / 400 ms).
pub fn fig3() -> String {
    let cfg = session_cfg(2003);
    let cell = SessionRun::cell(scenarios::tmobile_fdd_15mhz(), &cfg).run();
    let wired = SessionRun::baseline(BaselineAccess::Wired, &cfg).run();
    let mut out = String::from(
        "Fig. 3 — minimum jitter-buffer delay [ms] CDF (interactivity: >150 ms impacts, >400 ms unacceptable)\n",
    );
    // Uplink stream is received by the wired peer (remote); downlink by the
    // UE client (local).
    for (bundle, label) in [(&cell, "Cellular"), (&wired, "Wired")] {
        print_cdf(
            &mut out,
            &format!("Video / Uplink / {label}"),
            bundle
                .app_remote
                .iter()
                .map(|s| s.min_jitter_buffer_ms)
                .collect(),
        );
        print_cdf(
            &mut out,
            &format!("Video / Downlink / {label}"),
            bundle
                .app_local
                .iter()
                .map(|s| s.min_jitter_buffer_ms)
                .collect(),
        );
        print_cdf(
            &mut out,
            &format!("Audio / Uplink / {label}"),
            bundle
                .app_remote
                .iter()
                .map(|s| s.audio_jitter_buffer_ms)
                .collect(),
        );
        print_cdf(
            &mut out,
            &format!("Audio / Downlink / {label}"),
            bundle
                .app_local
                .iter()
                .map(|s| s.audio_jitter_buffer_ms)
                .collect(),
        );
    }
    out
}

/// Fig. 4 — fraction of concealed audio samples and video freeze time.
pub fn fig4() -> String {
    let cfg = session_cfg(2004);
    let cell = SessionRun::cell(scenarios::tmobile_fdd_15mhz(), &cfg).run();
    let wired = SessionRun::baseline(BaselineAccess::Wired, &cfg).run();
    let mut out = String::from("Fig. 4 — concealed audio samples & video freeze fraction\n");
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "network", "UL conceal", "UL freeze", "DL conceal", "DL freeze"
    );
    for (bundle, label) in [(&cell, "Cellular"), (&wired, "Wired")] {
        let duration_ms = bundle.meta.duration.as_millis_f64();
        let frac = |s: &telemetry::AppStatsRecord| {
            if s.total_audio_samples == 0 {
                0.0
            } else {
                s.concealed_samples as f64 / s.total_audio_samples as f64
            }
        };
        let ul = bundle.app_remote.last().expect("stats present");
        let dl = bundle.app_local.last().expect("stats present");
        let _ = writeln!(
            out,
            "{:<10} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            label,
            frac(ul),
            ul.total_freeze_ms / duration_ms,
            frac(dl),
            dl.total_freeze_ms / duration_ms,
        );
    }
    out
}

fn campus() -> Vec<ZoomQosRecord> {
    generate_campus_dataset(500, CampusDatasetSize::large())
}

/// Fig. 5 — campus Zoom dataset: network jitter per access type.
pub fn fig5() -> String {
    let data = campus();
    let mut out = String::from("Fig. 5 — campus Zoom dataset: network jitter [ms] CDF\n");
    for access in [AccessType::Wired, AccessType::Wifi, AccessType::Cellular] {
        print_cdf(
            &mut out,
            &format!("Outbound / {}", access.label()),
            data.iter()
                .filter(|r| r.access == access)
                .map(|r| r.outbound_jitter_ms)
                .collect(),
        );
        print_cdf(
            &mut out,
            &format!("Inbound / {}", access.label()),
            data.iter()
                .filter(|r| r.access == access)
                .map(|r| r.inbound_jitter_ms)
                .collect(),
        );
    }
    out
}

/// Fig. 6 — campus Zoom dataset: packet loss per access type.
pub fn fig6() -> String {
    let data = campus();
    let mut out = String::from("Fig. 6 — campus Zoom dataset: avg packet loss [%] CDF\n");
    for access in [AccessType::Wired, AccessType::Wifi, AccessType::Cellular] {
        print_cdf(
            &mut out,
            &format!("Outbound / {}", access.label()),
            data.iter()
                .filter(|r| r.access == access)
                .map(|r| r.outbound_loss_pct)
                .collect(),
        );
        print_cdf(
            &mut out,
            &format!("Inbound / {}", access.label()),
            data.iter()
                .filter(|r| r.access == access)
                .map(|r| r.inbound_loss_pct)
                .collect(),
        );
    }
    out
}

/// Table 1 — dataset overview: per-minute event rates per cell.
pub fn table1() -> String {
    let mut out = String::from("Table 1 — datasets: event rates per minute\n");
    let _ = writeln!(
        out,
        "{:<24} {:>6} {:>10} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "cell", "type", "BW[MHz]", "duplex", "DCI/min", "gNB/min", "pkt/min", "WebRTC/min"
    );
    for cell in all_cells() {
        let cfg = session_cfg(2010 + cell.mac.n_prbs as u64);
        let name = cell.name.clone();
        let class = format!("{:?}", cell.class);
        let bw = cell.bandwidth_mhz;
        let duplex = format!("{:?}", cell.frame.duplexing);
        let bundle = SessionRun::cell(cell, &cfg).run();
        let r = bundle.event_rates();
        let _ = writeln!(
            out,
            "{:<24} {:>6} {:>10.2} {:>6} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            name,
            class,
            bw,
            duplex,
            r.dci_per_min,
            r.gnb_per_min,
            r.packets_per_min,
            r.webrtc_per_min
        );
    }
    let campus = generate_campus_dataset(500, CampusDatasetSize::default());
    let _ = writeln!(
        out,
        "{:<24} {:>6} {:>10} {:>6} {:>10} {:>10} {:>10} {:>10}  ({} synthetic minutes)",
        "Zoom API (campus)",
        "org",
        "-",
        "-",
        "-",
        "-",
        "-",
        "1/min",
        campus.len()
    );
    out
}
