//! # domino-bench — the figure/table regeneration harness
//!
//! One experiment per figure and table of the paper's evaluation. Each
//! experiment runs the simulators, applies Domino where relevant, and
//! prints the same rows/series the paper reports (CDF quantile series for
//! CDF figures, time-series columns for trace figures, matrices for the
//! tables). Run via the `repro` binary:
//!
//! ```text
//! repro list        # all experiment ids
//! repro fig2        # one experiment
//! repro all         # everything
//! ```
//!
//! Absolute numbers come from a simulator, not the authors' testbed; the
//! *shape* (orderings, crossovers, rough factors) is what EXPERIMENTS.md
//! compares.

pub mod experiments;
pub mod util;

/// All experiment ids in paper order.
pub const EXPERIMENTS: [&str; 23] = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "table1",
    "fig8",
    "fig10",
    "table2",
    "table3",
    "table4",
    "fig12",
    "fig13",
    "fig14",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21-22",
    "ablation-proactive",
    "ablation-harq",
    "ablation-window",
];

/// Runs one experiment by id; `None` for an unknown id.
pub fn run(id: &str) -> Option<String> {
    let out = match id {
        "fig2" => experiments::motivation::fig2(),
        "fig3" => experiments::motivation::fig3(),
        "fig4" => experiments::motivation::fig4(),
        "fig5" => experiments::motivation::fig5(),
        "fig6" => experiments::motivation::fig6(),
        "table1" => experiments::motivation::table1(),
        "fig8" => experiments::longitudinal::fig8(),
        "table3" => experiments::longitudinal::table3(),
        "fig10" => experiments::domino_eval::fig10(),
        "table2" => experiments::domino_eval::table2(),
        "table4" => experiments::domino_eval::table4(),
        "fig12" => experiments::mechanisms::fig12(),
        "fig13" => experiments::mechanisms::fig13(),
        "fig14" => experiments::mechanisms::fig14(),
        "fig16" => experiments::mechanisms::fig16(),
        "fig17" => experiments::mechanisms::fig17(),
        "fig18" => experiments::mechanisms::fig18(),
        "fig19" => experiments::mechanisms::fig19(),
        "fig20" => experiments::consequences::fig20(),
        "fig21-22" | "fig21" | "fig22" => experiments::consequences::fig21_22(),
        "ablation-proactive" => experiments::ablations::proactive_grants(),
        "ablation-harq" => experiments::ablations::harq_attempts(),
        "ablation-window" => experiments::ablations::window_length(),
        _ => return None,
    };
    Some(out)
}
