//! Shared helpers for the experiment harness: sample extraction from trace
//! bundles and text formatting of CDFs / time series.

use std::fmt::Write as _;

use simcore::{SimDuration, SimTime};
use telemetry::{Cdf, Direction, StreamKind, TraceBundle, CDF_GRID};

use scenarios::SessionConfig;

/// Standard session length used by the CDF experiments.
pub fn session_cfg(seed: u64) -> SessionConfig {
    SessionConfig {
        duration: SimDuration::from_secs(120),
        seed,
        ..Default::default()
    }
}

/// A shorter session for scripted trace figures.
pub fn short_session_cfg(seed: u64, secs: u64) -> SessionConfig {
    SessionConfig {
        duration: SimDuration::from_secs(secs),
        seed,
        ..Default::default()
    }
}

/// One-way delay samples (ms) for one direction.
pub fn delay_samples(bundle: &TraceBundle, dir: Direction, media_only: bool) -> Vec<f64> {
    bundle
        .packets
        .iter()
        .filter(|p| p.direction == dir && (!media_only || p.stream != StreamKind::Rtcp))
        .filter_map(|p| p.one_way_delay())
        .map(|d| d.as_millis_f64())
        .collect()
}

/// Delay samples restricted to one stream kind.
pub fn stream_delay_samples(bundle: &TraceBundle, dir: Direction, stream: StreamKind) -> Vec<f64> {
    bundle
        .packets
        .iter()
        .filter(|p| p.direction == dir && p.stream == stream)
        .filter_map(|p| p.one_way_delay())
        .map(|d| d.as_millis_f64())
        .collect()
}

/// Prints a labelled CDF as `value p` rows on the standard quantile grid.
pub fn print_cdf(out: &mut String, label: &str, samples: Vec<f64>) {
    let cdf = Cdf::from_samples(samples);
    let _ = writeln!(out, "-- {label} (n={})", cdf.len());
    if cdf.is_empty() {
        let _ = writeln!(out, "   (no samples)");
        return;
    }
    for (v, p) in cdf.series(&CDF_GRID) {
        let _ = writeln!(out, "   {v:>10.2}  p{:<6}", format_p(p));
    }
}

fn format_p(p: f64) -> String {
    if p >= 1.0 {
        "100".to_string()
    } else {
        format!("{:.4}", p * 100.0)
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_string()
    }
}

/// Fraction of packet loss (no receive timestamp) for a direction.
pub fn loss_fraction(bundle: &TraceBundle, dir: Direction) -> f64 {
    let (mut total, mut lost) = (0usize, 0usize);
    for p in bundle.packets.iter().filter(|p| p.direction == dir) {
        total += 1;
        if p.received.is_none() {
            lost += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        lost as f64 / total as f64
    }
}

/// Bins a quantity over time for time-series printouts: returns
/// (bin_center_s, value) rows.
pub fn time_bins(
    from: SimTime,
    to: SimTime,
    bin: SimDuration,
    mut f: impl FnMut(SimTime, SimTime) -> f64,
) -> Vec<(f64, f64)> {
    let mut rows = Vec::new();
    let mut start = from;
    while start + bin <= to {
        let end = start + bin;
        let center = (start.as_secs_f64() + end.as_secs_f64()) / 2.0;
        rows.push((center, f(start, end)));
        start = end;
    }
    rows
}

/// Mean one-way delay (ms) of media packets sent in a window.
pub fn mean_delay_in(bundle: &TraceBundle, dir: Direction, from: SimTime, to: SimTime) -> f64 {
    let w = bundle.packets_window(from, to);
    let d: Vec<f64> = w
        .iter()
        .filter(|p| p.direction == dir && p.stream != StreamKind::Rtcp)
        .filter_map(|p| p.one_way_delay())
        .map(|d| d.as_millis_f64())
        .collect();
    if d.is_empty() {
        f64::NAN
    } else {
        d.iter().sum::<f64>() / d.len() as f64
    }
}

/// Application send rate (bits/s) in a window for one direction.
pub fn app_rate_in(bundle: &TraceBundle, dir: Direction, from: SimTime, to: SimTime) -> f64 {
    let w = bundle.packets_window(from, to);
    let bits: f64 = w
        .iter()
        .filter(|p| p.direction == dir)
        .map(|p| p.size_bytes as f64 * 8.0)
        .sum();
    bits / (to.saturating_since(from)).as_secs_f64().max(1e-9)
}

/// PHY allocated rate (bits/s) for the target UE in a window/direction.
pub fn phy_rate_in(bundle: &TraceBundle, dir: Direction, from: SimTime, to: SimTime) -> f64 {
    let w = bundle.dci_window(from, to);
    let bits: f64 = w
        .iter()
        .filter(|d| d.is_target_ue && d.direction == dir && d.harq_retx_idx == 0)
        .map(|d| d.tbs_bits as f64)
        .sum();
    bits / (to.saturating_since(from)).as_secs_f64().max(1e-9)
}

/// Mean PRBs per slot in a window for target UE / other UEs.
pub fn prbs_in(bundle: &TraceBundle, dir: Direction, from: SimTime, to: SimTime) -> (f64, f64) {
    let w = bundle.dci_window(from, to);
    let (mut ours, mut others) = (0u64, 0u64);
    for d in w.iter().filter(|d| d.direction == dir) {
        if d.is_target_ue {
            ours += d.n_prbs as u64;
        } else {
            others += d.n_prbs as u64;
        }
    }
    let secs = (to.saturating_since(from)).as_secs_f64().max(1e-9);
    (ours as f64 / secs, others as f64 / secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{PacketRecord, SessionMeta};

    #[test]
    fn cdf_printing_has_grid_rows() {
        let mut s = String::new();
        print_cdf(&mut s, "test", (0..100).map(|i| i as f64).collect());
        assert!(s.contains("-- test (n=100)"));
        assert!(s.contains("p50"));
        assert!(s.contains("p99"));
        let mut empty = String::new();
        print_cdf(&mut empty, "none", vec![]);
        assert!(empty.contains("no samples"));
    }

    #[test]
    fn loss_fraction_counts_unreceived() {
        let mut b = TraceBundle::new(SessionMeta::baseline("x", SimDuration::from_secs(1), 0));
        for i in 0..10u64 {
            b.packets.push(PacketRecord {
                sent: SimTime::from_millis(i),
                received: if i < 8 {
                    Some(SimTime::from_millis(i + 5))
                } else {
                    None
                },
                direction: Direction::Uplink,
                stream: StreamKind::Video,
                seq: i,
                size_bytes: 100,
            });
        }
        assert!((loss_fraction(&b, Direction::Uplink) - 0.2).abs() < 1e-9);
        assert_eq!(loss_fraction(&b, Direction::Downlink), 0.0);
    }

    #[test]
    fn time_bins_cover_range() {
        let rows = time_bins(
            SimTime::ZERO,
            SimTime::from_secs(2),
            SimDuration::from_millis(500),
            |_, _| 1.0,
        );
        assert_eq!(rows.len(), 4);
        assert!((rows[0].0 - 0.25).abs() < 1e-9);
    }
}
