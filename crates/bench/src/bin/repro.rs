//! `repro` — regenerates every figure and table of the paper's evaluation.
//!
//! ```text
//! repro list           # list experiment ids
//! repro fig2 table2    # run selected experiments
//! repro all            # run everything (Table 1 order)
//! ```

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: repro <list|all|EXPERIMENT...>");
        eprintln!("experiments: {}", domino_bench::EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    if args[0] == "list" {
        for id in domino_bench::EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args[0] == "all" {
        domino_bench::EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        let start = Instant::now();
        match domino_bench::run(id) {
            Some(report) => {
                println!("{report}");
                eprintln!("[{id} finished in {:.1?}]", start.elapsed());
            }
            None => {
                eprintln!("unknown experiment {id:?}; try `repro list`");
                std::process::exit(1);
            }
        }
    }
}
