//! `trace-export` — run a session on any of the Table 1 cells and dump the
//! full cross-layer trace bundle as CSV files (packets, DCI, gNB log, and
//! both clients' app stats), for analysis outside this workspace.
//!
//! ```text
//! trace-export <cell> <seconds> <seed> <outdir>
//! cells: tmobile-fdd | tmobile-tdd | amarisoft | mosolabs | wired | wifi
//! ```

use std::fs;
use std::path::Path;

use scenarios::{BaselineAccess, SessionConfig, SessionRun};
use simcore::SimDuration;
use telemetry::csv;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 4 {
        eprintln!("usage: trace-export <cell> <seconds> <seed> <outdir>");
        eprintln!("cells: tmobile-fdd | tmobile-tdd | amarisoft | mosolabs | wired | wifi");
        std::process::exit(2);
    }
    let seconds: u64 = args[1].parse().expect("seconds must be an integer");
    let seed: u64 = args[2].parse().expect("seed must be an integer");
    let outdir = Path::new(&args[3]);
    fs::create_dir_all(outdir).expect("create output directory");

    let cfg = SessionConfig {
        duration: SimDuration::from_secs(seconds),
        seed,
        ..Default::default()
    };
    let bundle = match args[0].as_str() {
        "tmobile-fdd" => SessionRun::cell(scenarios::tmobile_fdd_15mhz(), &cfg).run(),
        "tmobile-tdd" => SessionRun::cell(scenarios::tmobile_tdd_100mhz(), &cfg).run(),
        "amarisoft" => SessionRun::cell(scenarios::amarisoft(), &cfg).run(),
        "mosolabs" => SessionRun::cell(scenarios::mosolabs(), &cfg).run(),
        "wired" => SessionRun::baseline(BaselineAccess::Wired, &cfg).run(),
        "wifi" => SessionRun::baseline(BaselineAccess::Wifi, &cfg).run(),
        other => {
            eprintln!("unknown cell {other:?}");
            std::process::exit(1);
        }
    };

    let write = |name: &str, content: String| {
        let path = outdir.join(name);
        fs::write(&path, content).expect("write CSV");
        println!("wrote {}", path.display());
    };
    write("packets.csv", csv::packets_to_csv(&bundle));
    write("dci.csv", csv::dci_to_csv(&bundle));
    write("gnb.csv", csv::gnb_to_csv(&bundle));
    write("app_local.csv", csv::app_to_csv(&bundle.app_local));
    write("app_remote.csv", csv::app_to_csv(&bundle.app_remote));
    println!(
        "session: {} | {} packets, {} DCI, {} gNB records",
        bundle.meta.cell_name,
        bundle.packets.len(),
        bundle.dci.len(),
        bundle.gnb.len()
    );
}
