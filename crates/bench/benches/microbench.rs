//! Criterion micro-benchmarks for the performance-critical paths:
//! Domino's window feature extraction and chain search (the "continuous,
//! near real-time" requirement of §1), the RAN simulator's slot loop, and
//! the GCC building blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use domino_core::{
    compile, default_graph, extract_features, Domino, DominoConfig, Feature, FeatureVector,
    StreamingAnalyzer, Thresholds,
};
use domino_sweep::{
    merge_shards, run_coordinator, run_shard, CoordinatorConfig, ExecutionMode, FaultPlan,
    InProcFleet, MuxWorker, ShardPlan, SweepOptions, WorkerScratch,
};
use ran_sim::phy;
use rtc_sim::gcc::trendline::{PacketTiming, TrendlineEstimator};
use scenarios::{SessionArena, SessionConfig, SessionRun, SessionSpec};
use simcore::{EventQueue, SimDuration, SimTime};

fn session_bundle() -> telemetry::TraceBundle {
    let cfg = SessionConfig {
        duration: SimDuration::from_secs(20),
        seed: 999,
        ..Default::default()
    };
    SessionRun::cell(scenarios::amarisoft(), &cfg).run()
}

fn bench_feature_extraction(c: &mut Criterion) {
    let bundle = session_bundle();
    let th = Thresholds::default();
    c.bench_function("domino/extract_features_5s_window", |b| {
        b.iter(|| {
            extract_features(
                black_box(&bundle),
                SimTime::from_secs(10),
                SimTime::from_secs(15),
                &th,
            )
        })
    });
}

fn bench_full_window_analysis(c: &mut Criterion) {
    let bundle = session_bundle();
    let domino = Domino::with_defaults();
    c.bench_function("domino/analyze_window", |b| {
        b.iter(|| domino.analyze_window(black_box(&bundle), SimTime::from_secs(10)))
    });
}

/// Per-step cost of the incremental analyzer at 1 s step / 5 s window: each
/// iteration ingests one step's worth of records and emits one window. The
/// companion number is `domino/extract_features_5s_window`, the batch cost of
/// the same step — the ISSUE's acceptance bar is streaming ≥ 3× cheaper.
fn bench_streaming_step(c: &mut Criterion) {
    let bundle = session_bundle();
    let cfg = DominoConfig {
        step: SimDuration::from_secs(1),
        ..Default::default()
    };
    let warmup = cfg.warmup;
    let window = cfg.window;
    let step = cfg.step;
    let horizon = bundle.horizon();
    let mut analyzer = StreamingAnalyzer::new(default_graph(), cfg).expect("aligned");
    let mut cursor = bundle.cursor();
    let mut start = SimTime::ZERO + warmup;
    c.bench_function("domino/streaming_step", |b| {
        b.iter(|| {
            if start + window > horizon {
                // Wrapped past the trace end: restart the sweep. Amortised
                // over the ~13 steps per sweep this is noise.
                analyzer.reset();
                cursor = bundle.cursor();
                start = SimTime::ZERO + warmup;
            }
            let slices = bundle.advance_until(&mut cursor, start + window);
            analyzer.push_slices(&slices);
            let w = analyzer.emit(start);
            start += step;
            w
        })
    });
}

/// Per-step cost of the full live pipeline at 1 s step / 5 s window: replay
/// a recorded session's telemetry as emission-time tap events (packet sends
/// at `sent`, deliveries at `received`, gNB logs at their out-of-order
/// timestamps), one second of session time per iteration. The delta over
/// `domino/streaming_step` is the price of the watermark reorder stage,
/// in-flight packet staging, and constant-memory pruning.
enum Ev {
    AppL(usize),
    AppR(usize),
    Dci(usize),
    Gnb(usize),
    Sent(usize),
    Del(usize),
}

/// Flattens a recorded bundle into the emission-time tap event stream
/// (packet sends at `sent` fate-unknown, deliveries at `received`, gNB logs
/// at their out-of-order timestamps) the live-stack benches replay.
fn tap_replay(
    bundle: &telemetry::TraceBundle,
) -> (Vec<(SimTime, Ev)>, Vec<telemetry::PacketRecord>) {
    let mut events: Vec<(SimTime, Ev)> = Vec::new();
    for (i, r) in bundle.app_local.iter().enumerate() {
        events.push((r.ts, Ev::AppL(i)));
    }
    for (i, r) in bundle.app_remote.iter().enumerate() {
        events.push((r.ts, Ev::AppR(i)));
    }
    for (i, r) in bundle.dci.iter().enumerate() {
        events.push((r.ts, Ev::Dci(i)));
    }
    for (i, r) in bundle.gnb.iter().enumerate() {
        events.push((r.ts, Ev::Gnb(i)));
    }
    let mut unsent = Vec::new();
    for (i, p) in bundle.packets.iter().enumerate() {
        // Packets are announced fate-unknown at send time...
        let mut record = p.clone();
        record.received = None;
        unsent.push(record);
        events.push((p.sent, Ev::Sent(i)));
        // ...and patched at delivery.
        if let Some(at) = p.received {
            events.push((at, Ev::Del(i)));
        }
    }
    // Stable: packet sends keep their (sent, id) emission order on ties.
    events.sort_by_key(|e| e.0);
    (events, unsent)
}

/// Replays one second of session time into `tap`.
fn replay_second(
    tap: &mut impl telemetry::LiveTap,
    bundle: &telemetry::TraceBundle,
    events: &[(SimTime, Ev)],
    unsent: &[telemetry::PacketRecord],
    idx: &mut usize,
    now: &mut SimTime,
) {
    *now += SimDuration::from_secs(1);
    while *idx < events.len() && events[*idx].0 < *now {
        match events[*idx].1 {
            Ev::AppL(i) => tap.on_app_local(&bundle.app_local[i]),
            Ev::AppR(i) => tap.on_app_remote(&bundle.app_remote[i]),
            Ev::Dci(i) => tap.on_dci(&bundle.dci[i]),
            Ev::Gnb(i) => tap.on_gnb(&bundle.gnb[i]),
            Ev::Sent(i) => tap.on_packet_sent(i as u64, &unsent[i]),
            Ev::Del(i) => {
                tap.on_packet_delivered(
                    i as u64,
                    bundle.packets[i]
                        .received
                        .expect("delivery implies received"),
                );
            }
        }
        *idx += 1;
    }
    tap.on_tick(*now);
}

fn bench_live_step(c: &mut Criterion) {
    use domino_live::{EarlyExit, LiveConfig, LivePipeline};
    use telemetry::Lateness;

    let bundle = session_bundle();
    let (events, unsent) = tap_replay(&bundle);

    let cfg = DominoConfig {
        step: SimDuration::from_secs(1),
        ..Default::default()
    };
    let mut pipe = LivePipeline::new(
        default_graph(),
        cfg,
        LiveConfig {
            lateness: Lateness::Static(SimDuration::from_secs(1)),
            early_exit: EarlyExit::Never,
        },
    )
    .expect("aligned");
    let mut idx = 0usize;
    let mut now = SimTime::ZERO;
    c.bench_function("domino/live_step", |b| {
        b.iter(|| {
            if idx >= events.len() {
                // Replayed the whole session: start over.
                pipe.reset();
                idx = 0;
                now = SimTime::ZERO;
            }
            replay_second(&mut pipe, &bundle, &events, &unsent, &mut idx, &mut now);
            black_box(pipe.stats())
        })
    });
}

/// The same per-step workload as `domino/live_step` with the adaptive
/// lateness bound: every record additionally feeds the per-stream delay
/// histograms and every tick re-derives the watermark bound from the target
/// quantile. The delta over `domino/live_step` is the whole price of
/// adaptivity.
fn bench_adaptive_step(c: &mut Criterion) {
    use domino_live::{EarlyExit, LiveConfig, LivePipeline};
    use telemetry::Lateness;

    let bundle = session_bundle();
    let (events, unsent) = tap_replay(&bundle);
    let cfg = DominoConfig {
        step: SimDuration::from_secs(1),
        ..Default::default()
    };
    let mut pipe = LivePipeline::new(
        default_graph(),
        cfg,
        LiveConfig {
            lateness: Lateness::Adaptive {
                target_quantile: 0.99,
                floor: SimDuration::from_millis(100),
                ceil: SimDuration::from_secs(5),
            },
            early_exit: EarlyExit::Never,
        },
    )
    .expect("aligned");
    let mut idx = 0usize;
    let mut now = SimTime::ZERO;
    c.bench_function("live/adaptive_step", |b| {
        b.iter(|| {
            if idx >= events.len() {
                pipe.reset();
                idx = 0;
                now = SimTime::ZERO;
            }
            replay_second(&mut pipe, &bundle, &events, &unsent, &mut idx, &mut now);
            black_box(pipe.stats())
        })
    });
}

/// Tap-layer tax of chaos injection: `domino/live_step`'s replay pushed
/// through a [`ChaosTap`](domino_live::ChaosTap) whose script rolls a drop
/// and a delay fault on the gNB stream — so every record pays the seeded
/// fault rolls, the fault log, and (for the delayed few) the stash
/// round-trip. Compare against `domino/live_step` for the per-record
/// overhead; production sweeps without a chaos spec skip the wrapper
/// entirely.
fn bench_chaos_tap_overhead(c: &mut Criterion) {
    use domino_live::{ChaosState, ChaosTap, EarlyExit, LiveConfig, LivePipeline};
    use telemetry::{Lateness, TapChaosSpec, TapFault, TapStream};

    let bundle = session_bundle();
    let (events, unsent) = tap_replay(&bundle);
    let cfg = DominoConfig {
        step: SimDuration::from_secs(1),
        ..Default::default()
    };
    let mut pipe = LivePipeline::new(
        default_graph(),
        cfg,
        LiveConfig {
            lateness: Lateness::Static(SimDuration::from_secs(1)),
            early_exit: EarlyExit::Never,
        },
    )
    .expect("aligned");
    let spec = TapChaosSpec::new(0xC4A0)
        .fault(TapFault::Drop {
            stream: TapStream::Gnb,
            pct: 5,
        })
        .fault(TapFault::Delay {
            stream: TapStream::Gnb,
            pct: 5,
            max_delay: SimDuration::from_millis(400),
        });
    let mut state = ChaosState::new(&spec);
    let mut idx = 0usize;
    let mut now = SimTime::ZERO;
    c.bench_function("live/chaos_tap_overhead", |b| {
        b.iter(|| {
            if idx >= events.len() {
                pipe.reset();
                state = ChaosState::new(&spec);
                idx = 0;
                now = SimTime::ZERO;
            }
            let mut tap = ChaosTap::new(&mut state, &mut pipe);
            replay_second(&mut tap, &bundle, &events, &unsent, &mut idx, &mut now);
            black_box(pipe.stats())
        })
    });
}

/// The same per-step workload as `domino/live_step`, but through a
/// session-keyed [`domino_live::PipelinePool`]: each full-session replay
/// checks a pipeline out (reset of a warm free-list entry) and releases it
/// back at the end, so the number prices exactly what the multiplexed
/// sweep's live mode pays per step — pool indirection plus the periodic
/// lease cycle — over a dedicated per-worker pipeline.
fn bench_pool_step(c: &mut Criterion) {
    use domino_live::{EarlyExit, LiveConfig, PipelinePool};
    use telemetry::Lateness;

    let bundle = session_bundle();
    let (events, unsent) = tap_replay(&bundle);
    let cfg = DominoConfig {
        step: SimDuration::from_secs(1),
        ..Default::default()
    };
    let mut pool = PipelinePool::new(
        default_graph(),
        cfg,
        LiveConfig {
            lateness: Lateness::Static(SimDuration::from_secs(1)),
            early_exit: EarlyExit::Never,
        },
    )
    .expect("aligned");
    let mut session = 0u64;
    pool.checkout(session);
    let mut idx = 0usize;
    let mut now = SimTime::ZERO;
    c.bench_function("live/pool_step", |b| {
        b.iter(|| {
            if idx >= events.len() {
                // Replayed the whole session: the "call" ends — release the
                // pipeline and lease one for the next call, like a
                // multiplexed slot refill.
                pool.release(session);
                session += 1;
                pool.checkout(session);
                idx = 0;
                now = SimTime::ZERO;
            }
            let pipe = pool.get_mut(session).expect("leased");
            replay_second(pipe, &bundle, &events, &unsent, &mut idx, &mut now);
            black_box(pipe.stats())
        })
    });
}

/// Full-sweep comparison at the same configuration: the end-to-end win of
/// ingesting each record once instead of W/Δt times.
fn bench_full_sweep(c: &mut Criterion) {
    let bundle = session_bundle();
    let cfg = DominoConfig {
        step: SimDuration::from_secs(1),
        ..Default::default()
    };
    let domino = Domino::new(default_graph(), cfg.clone());
    c.bench_function("domino/batch_full_sweep_20s", |b| {
        b.iter(|| domino.analyze(black_box(&bundle)))
    });
    let mut analyzer = StreamingAnalyzer::new(default_graph(), cfg).expect("aligned");
    c.bench_function("domino/streaming_full_sweep_20s", |b| {
        b.iter(|| analyzer.analyze(black_box(&bundle)))
    });
}

fn bench_chain_search(c: &mut Criterion) {
    let domino = Domino::with_defaults();
    let mut fv = FeatureVector::new();
    for name in [
        "ul_harq_retx",
        "dl_cross_traffic",
        "forward_delay_up",
        "reverse_delay_up",
        "local_jitter_buffer_drain",
        "local_target_bitrate_down",
        "local_pushback_rate_down",
    ] {
        fv.set(Feature::parse(name).expect("feature"), true);
    }
    c.bench_function("domino/backward_trace_busy_window", |b| {
        b.iter(|| domino.trace_chains(black_box(&fv)))
    });
    let g = default_graph();
    let prog = compile(&g);
    c.bench_function("domino/compiled_program_run", |b| {
        b.iter(|| prog.run(black_box(&g), black_box(&fv)))
    });
}

fn bench_dsl_parse(c: &mut Criterion) {
    c.bench_function("domino/dsl_parse_default_config", |b| {
        b.iter(|| domino_core::parse(black_box(domino_core::DEFAULT_CONFIG)).expect("parses"))
    });
}

fn bench_ran_session(c: &mut Criterion) {
    c.bench_function("ran/two_party_session_per_sim_second", |b| {
        let cfg = SessionConfig {
            duration: SimDuration::from_secs(1),
            seed: 5,
            ..Default::default()
        };
        b.iter(|| SessionRun::cell(scenarios::amarisoft(), black_box(&cfg)).run())
    });
    // The same session with the domino-obs recorder enabled (default wall
    // sampling): prices the whole per-slot/per-tick recording surface —
    // counters, RAN accumulators, phase spans — against the number above.
    // The README's observability table documents the ratio.
    // The ABR streaming workload on the same cell: one player + segment
    // server instead of two RTC endpoints, everything else identical.
    // Prices the application-generic session engine's second workload.
    c.bench_function("ran/abr_session_per_sim_second", |b| {
        use scenarios::AppSpec;
        let cfg = SessionConfig {
            duration: SimDuration::from_secs(1),
            seed: 5,
            ..Default::default()
        };
        b.iter(|| {
            SessionRun::cell(scenarios::amarisoft(), black_box(&cfg))
                .app(AppSpec::Abr(abr_sim::AbrConfig::default()))
                .run()
        })
    });
    c.bench_function("ran/two_party_session_per_sim_second_obs", |b| {
        use domino_obs::{ObsConfig, Recorder};
        let cfg = SessionConfig {
            duration: SimDuration::from_secs(1),
            seed: 5,
            ..Default::default()
        };
        b.iter(|| {
            let mut arena = SessionArena::new();
            *arena.recorder_mut() = Recorder::new(ObsConfig::on());
            SessionRun::cell(scenarios::amarisoft(), black_box(&cfg))
                .tap(&mut telemetry::NullTap)
                .arena(&mut arena)
                .run()
        })
    });
}

/// The recorder's record-site primitives, disabled and enabled. Disabled is
/// the number that must be free: every instrumentation point in the engine
/// compiles to one predicted branch on a `None` discriminant. The loop
/// interleaves a counter add and a histogram observe (the two hot-path
/// shapes the slot loop emits); spans get their own pair since they
/// additionally carry the sampled wall clock.
fn bench_obs_primitives(c: &mut Criterion) {
    use domino_obs::{Counter, HistId, ObsConfig, Recorder, SpanId};
    const OPS: u64 = 1024;

    let mut off = Recorder::off();
    c.bench_function("obs/counter_hot_path_off", |b| {
        b.iter(|| {
            for i in 0..OPS {
                off.add(Counter::RanDataSlots, 1);
                off.observe(HistId::RanRlcQueueBytes, black_box(i));
            }
        })
    });
    let mut on = Recorder::new(ObsConfig::on());
    c.bench_function("obs/counter_hot_path", |b| {
        b.iter(|| {
            for i in 0..OPS {
                on.add(Counter::RanDataSlots, 1);
                on.observe(HistId::RanRlcQueueBytes, black_box(i));
            }
        })
    });

    let mut off = Recorder::off();
    c.bench_function("obs/span_enter_exit_off", |b| {
        b.iter(|| {
            for _ in 0..OPS {
                let t = off.span_enter(SpanId::BeginTick);
                off.span_exit(SpanId::BeginTick, t);
            }
        })
    });
    // Default wall sampling (every 64th entry reads the clock), i.e. what
    // `ObsConfig::on()` sweeps pay per span.
    let mut on = Recorder::new(ObsConfig::on());
    c.bench_function("obs/span_enter_exit", |b| {
        b.iter(|| {
            for _ in 0..OPS {
                let t = on.span_enter(SpanId::BeginTick);
                on.span_exit(SpanId::BeginTick, t);
            }
        })
    });
}

/// The calendar queue against the binary heap on the session engine's
/// workload shape: near-monotonic schedules a few milliseconds ahead,
/// `pop_due` draining per 1 ms tick, ~128 events in flight. Both benches
/// run the identical op sequence; the pop order is identical too (the
/// property test in simcore enforces it).
fn bench_calendar_vs_heap(c: &mut Criterion) {
    fn churn(q: &mut EventQueue<u64>) -> u64 {
        q.clear();
        let mut acc = 0u64;
        let mut seq = 0u64;
        for tick in 0..1_000u64 {
            let now = SimTime::from_millis(tick);
            for k in 0..4u64 {
                // Mostly near-future (2–40 ms ahead), occasionally far out
                // (RLC status-delay scale) to exercise the overflow tier.
                let ahead = if seq.is_multiple_of(61) {
                    300 + k
                } else {
                    2 + (seq % 38)
                };
                q.schedule(SimTime::from_millis(tick + ahead), seq);
                seq += 1;
            }
            while let Some(s) = q.pop_due(now) {
                acc = acc.wrapping_add(s.event);
            }
        }
        while let Some(s) = q.pop() {
            acc = acc.wrapping_add(s.event);
        }
        acc
    }
    let mut cal = EventQueue::calendar();
    c.bench_function("simcore/calendar_vs_heap", |b| {
        b.iter(|| churn(black_box(&mut cal)))
    });
    let mut heap = EventQueue::with_capacity(256);
    c.bench_function("simcore/calendar_vs_heap_baseline", |b| {
        b.iter(|| churn(black_box(&mut heap)))
    });
}

/// End-to-end sweep-worker throughput: one 3 s simulate-then-analyze
/// session per iteration. `sweep/sessions_per_sec` is the shipping
/// configuration (persistent worker arena, calendar queue, recycled
/// bundles); the `_fresh_heap` companion rebuilds a heap-backed arena per
/// session, approximating the pre-arena path on current code. The
/// PR-4 acceptance ratio against the seed tree is tracked by
/// `ran/two_party_session_per_sim_second` in BENCH_baseline.json.
fn bench_sweep_sessions(c: &mut Criterion) {
    let spec = SessionSpec::cell(
        scenarios::amarisoft(),
        SessionConfig {
            duration: SimDuration::from_secs(3),
            seed: 77,
            ..Default::default()
        },
    );
    let domino = Domino::with_defaults();
    let opts = SweepOptions::default();
    let mut scratch = WorkerScratch::new(&domino, &opts);
    c.bench_function("sweep/sessions_per_sec", |b| {
        b.iter(|| scratch.run_session(black_box(&spec), 0, &domino, &opts))
    });
    let mut analyzer = StreamingAnalyzer::with_defaults();
    c.bench_function("sweep/sessions_per_sec_fresh_heap", |b| {
        b.iter(|| {
            let mut arena = SessionArena::with_heap_queue();
            let bundle = black_box(&spec).run_in(&mut arena);
            analyzer.analyze(&bundle)
        })
    });
}

/// Marginal cost of one more UE in a shared cell's slot loop. Each probe
/// polls one simulated second (2 000 TDD slots) of an Amarisoft cell whose
/// SoA table carries N scripted traffic UEs; the headline number is the
/// differential `(t(64 UEs) − t(16 UEs)) / 48` — wall time per additional
/// UE per simulated second, with the fixed slot-loop overhead (cross
/// process, frame bookkeeping, experiment UE 0) subtracted out. The ISSUE's
/// acceptance bar compares it to `sweep/shared_cell_sessions_per_sec`: a UE
/// added to an existing cell must be ≥5× cheaper than a whole new session.
fn bench_cell_slot_marginal_ue(c: &mut Criterion) {
    use std::time::{Duration, Instant};

    fn time_poll(n_ues: usize, iters: u64) -> Duration {
        let mut cell_cfg = scenarios::amarisoft();
        cell_cfg.traffic_ues = ran_sim::traffic_mix(n_ues);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            // Construction (config clone, table fill) stays outside the
            // timer: the sweep pays it once per session, not per slot.
            let mut cell = ran_sim::CellSim::new(cell_cfg.clone(), 7);
            let start = Instant::now();
            cell.poll(SimTime::from_secs(1));
            total += start.elapsed();
            black_box(cell.n_traffic_ues());
        }
        total
    }

    for n in [2usize, 16, 64] {
        c.bench_function(&format!("ran/cell_slot_1s_n{n}"), |b| {
            b.iter_custom(|iters| time_poll(n, iters))
        });
    }
    c.bench_function("ran/cell_slot_marginal_ue", |b| {
        b.iter_custom(|iters| {
            let t64 = time_poll(64, iters);
            let t16 = time_poll(16, iters);
            t64.saturating_sub(t16) / 48
        })
    });
}

/// Sweep-worker throughput on a *contended* cell: the same 3 s
/// simulate-then-analyze session as `sweep/sessions_per_sec`, but the cell
/// carries 46 scripted traffic UEs (the contended-cell example's
/// population). The gap between the two numbers is the whole-cell
/// simulation surcharge; divided by 46 it should approach
/// `ran/cell_slot_marginal_ue`.
fn bench_shared_cell_sweep(c: &mut Criterion) {
    let mut cell = scenarios::amarisoft();
    cell.traffic_ues = ran_sim::traffic_mix(46);
    let spec = SessionSpec::cell(
        cell,
        SessionConfig {
            duration: SimDuration::from_secs(3),
            seed: 77,
            ..Default::default()
        },
    );
    let domino = Domino::with_defaults();
    let opts = SweepOptions::default();
    let mut scratch = WorkerScratch::new(&domino, &opts);
    c.bench_function("sweep/shared_cell_sessions_per_sec", |b| {
        b.iter(|| scratch.run_session(black_box(&spec), 0, &domino, &opts))
    });
}

/// Per-session wall time of the multiplexed many-call engine: one worker
/// drives a batch of 8 three-second sessions at width 8 — one shared
/// calendar queue, one shared arena, sessions interleaved tick by tick —
/// and the measured batch time is divided by the batch size, so the number
/// is directly comparable to `sweep/sessions_per_sec` (the same session
/// shape run to completion one at a time on the same warm-arena worker).
fn bench_multiplexed_sweep(c: &mut Criterion) {
    const WIDTH: usize = 8;
    let specs: Vec<SessionSpec> = (0..WIDTH)
        .map(|i| {
            SessionSpec::cell(
                scenarios::amarisoft(),
                SessionConfig {
                    duration: SimDuration::from_secs(3),
                    seed: 77 + i as u64,
                    ..Default::default()
                },
            )
        })
        .collect();
    let domino = Domino::with_defaults();
    let opts = SweepOptions {
        threads: 1,
        execution: ExecutionMode::Multiplexed { width: WIDTH },
        ..Default::default()
    };
    let mut worker = MuxWorker::new(&domino, &opts);
    c.bench_function("sweep/multiplexed_sessions_per_sec", |b| {
        b.iter_custom(|iters| {
            let start = std::time::Instant::now();
            for _ in 0..iters {
                black_box(worker.run_batch(&specs, WIDTH, &domino, &opts));
            }
            start.elapsed() / WIDTH as u32
        })
    });
}

/// Per-step streaming cost on *busy* windows — dense delay series where the
/// old per-step delay-trend evaluation was O(window records). The two
/// numbers run the identical dense trace at a 5 s and a 15 s window: with
/// the amortized chunk means the per-step cost must stay ~flat instead of
/// tripling with the window (each step still ingests one step's worth of
/// records either way).
fn bench_streaming_step_busy(c: &mut Criterion) {
    use telemetry::{PacketRecord, SessionMeta, StreamKind, TraceBundle};
    let secs = 60u64;
    let mut bundle = TraceBundle::new(SessionMeta::baseline(
        "busy",
        SimDuration::from_secs(secs),
        0,
    ));
    // ~2000 delivered packets per second, drifting delays → live trends.
    for i in 0..(secs * 2000) {
        let sent = SimTime::from_micros(i * 500);
        let delay_us = 15_000 + ((i * 37) % 9_000) + ((i / 5_000) % 7) * 4_000;
        bundle.packets.push(PacketRecord {
            sent,
            received: Some(sent + SimDuration::from_micros(delay_us)),
            direction: if i % 2 == 0 {
                telemetry::Direction::Uplink
            } else {
                telemetry::Direction::Downlink
            },
            stream: if i % 13 == 0 {
                StreamKind::Rtcp
            } else {
                StreamKind::Video
            },
            seq: i,
            size_bytes: 900,
        });
    }
    bundle.sort();
    for (name, window_secs) in [
        ("domino/streaming_step_busy", 5u64),
        ("domino/streaming_step_busy_15s_window", 15),
    ] {
        let cfg = DominoConfig {
            step: SimDuration::from_secs(1),
            window: SimDuration::from_secs(window_secs),
            ..Default::default()
        };
        let warmup = cfg.warmup;
        let window = cfg.window;
        let step = cfg.step;
        let horizon = bundle.horizon();
        let mut analyzer = StreamingAnalyzer::new(default_graph(), cfg).expect("aligned");
        let mut cursor = bundle.cursor();
        let mut start = SimTime::ZERO + warmup;
        c.bench_function(name, |b| {
            b.iter(|| {
                if start + window > horizon {
                    analyzer.reset();
                    cursor = bundle.cursor();
                    start = SimTime::ZERO + warmup;
                }
                let slices = bundle.advance_until(&mut cursor, start + window);
                analyzer.push_slices(&slices);
                let w = analyzer.emit(start);
                start += step;
                w
            })
        });
    }
}

fn bench_phy(c: &mut Criterion) {
    c.bench_function("phy/tbs_bits_full_carrier", |b| {
        b.iter(|| phy::tbs_bits(black_box(27), black_box(273)))
    });
    c.bench_function("phy/select_mcs", |b| {
        b.iter(|| phy::select_mcs(black_box(17.3), 0.0, -1.0, 28))
    });
}

fn bench_trendline(c: &mut Criterion) {
    c.bench_function("gcc/trendline_1000_packets", |b| {
        b.iter(|| {
            let mut est = TrendlineEstimator::new();
            for i in 0..1000u64 {
                est.on_packet(PacketTiming {
                    sent: SimTime::from_millis(i * 20),
                    arrival: SimTime::from_millis(i * 20 + 30 + (i % 7)),
                });
            }
            black_box(est.state())
        })
    });
}

/// Coordinator machinery tax: the same 8-spec grid swept once through the
/// fault-tolerant coordinator (in-process transport, no faults, 2-spec
/// ranges — so framing, report encode/parse/checksum, dispatch/deadline
/// bookkeeping, and the final merge are all on the clock) and once through
/// the bare `run_shard` + `merge_shards` file path it wraps. Sweep compute
/// dominates both; the coordinator number must stay within noise of the
/// direct one.
fn bench_coordinator_overhead(c: &mut Criterion) {
    let specs: Vec<SessionSpec> = scenarios::all_cells_grid(42, SimDuration::from_secs(2));
    let domino = Domino::with_defaults();
    let opts = SweepOptions::default().threads(1);
    let cfg = CoordinatorConfig {
        chunk_specs: 2,
        ..Default::default()
    };
    c.bench_function("sweep/coordinator_overhead", |b| {
        b.iter(|| {
            let mut fleet =
                InProcFleet::new(black_box(&specs), &domino, &opts, 2, &FaultPlan::none());
            run_coordinator(specs.len(), &mut fleet, &cfg, |_| {})
                .expect("clean fleet")
                .report
        })
    });
    c.bench_function("sweep/shard_merge_direct", |b| {
        b.iter(|| {
            let plan = ShardPlan::new(black_box(&specs).len(), specs.len().div_ceil(2));
            let reports: Vec<_> = plan
                .shards()
                .iter()
                .map(|s| run_shard(&specs, s, &domino, &opts))
                .collect();
            merge_shards(&reports).expect("tiles")
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets =
        bench_feature_extraction,
        bench_full_window_analysis,
        bench_streaming_step,
        bench_live_step,
        bench_adaptive_step,
        bench_chaos_tap_overhead,
        bench_pool_step,
        bench_full_sweep,
        bench_chain_search,
        bench_dsl_parse,
        bench_ran_session,
        bench_obs_primitives,
        bench_calendar_vs_heap,
        bench_sweep_sessions,
        bench_cell_slot_marginal_ue,
        bench_shared_cell_sweep,
        bench_multiplexed_sweep,
        bench_coordinator_overhead,
        bench_streaming_step_busy,
        bench_phy,
        bench_trendline
);
criterion_main!(benches);
