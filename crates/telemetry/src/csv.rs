//! Hand-rolled CSV export for trace bundles and figure series.
//!
//! Kept dependency-free on purpose (see DESIGN.md §3): the values we write are
//! numbers and fixed labels, so the only quoting rule needed is for the free-
//! form cell-name field.

use std::fmt::Write as _;

use crate::bundle::TraceBundle;
use crate::records::GnbEvent;

/// Escapes a field per RFC 4180 if it contains a comma, quote, or newline.
pub fn escape_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders a (value, fraction) CDF series as `value,cdf` lines.
pub fn cdf_to_csv(header: (&str, &str), series: &[(f64, f64)]) -> String {
    let mut out = format!("{},{}\n", header.0, header.1);
    for (v, p) in series {
        let _ = writeln!(out, "{v:.4},{p:.4}");
    }
    out
}

/// Renders the packet records of a bundle as CSV.
pub fn packets_to_csv(bundle: &TraceBundle) -> String {
    let mut out = String::from("sent_us,received_us,direction,stream,seq,size_bytes,owd_ms\n");
    for p in &bundle.packets {
        let recv = p
            .received
            .map(|t| t.as_micros().to_string())
            .unwrap_or_default();
        let owd = p
            .one_way_delay()
            .map(|d| format!("{:.3}", d.as_millis_f64()))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{},{:?},{},{},{}",
            p.sent.as_micros(),
            recv,
            p.direction.label(),
            p.stream,
            p.seq,
            p.size_bytes,
            owd
        );
    }
    out
}

/// Renders the DCI records of a bundle as CSV.
pub fn dci_to_csv(bundle: &TraceBundle) -> String {
    let mut out = String::from(
        "ts_us,rnti,direction,target_ue,prbs,mcs,tbs_bits,harq_id,retx_idx,decoded,proactive,used_bits\n",
    );
    for d in &bundle.dci {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            d.ts.as_micros(),
            d.rnti,
            d.direction.label(),
            d.is_target_ue as u8,
            d.n_prbs,
            d.mcs,
            d.tbs_bits,
            d.harq_id,
            d.harq_retx_idx,
            d.decoded_ok as u8,
            d.proactive as u8,
            d.used_bits
        );
    }
    out
}

/// Renders the gNB log of a bundle as CSV.
pub fn gnb_to_csv(bundle: &TraceBundle) -> String {
    let mut out = String::from("ts_us,event,direction,value\n");
    for g in &bundle.gnb {
        let (ev, dir, val) = match &g.event {
            GnbEvent::RlcRetx { direction, sn } => ("rlc_retx", direction.label(), *sn as u64),
            GnbEvent::RlcBuffer { direction, bytes } => ("rlc_buffer", direction.label(), *bytes),
            GnbEvent::RrcTransition { state, rnti } => (
                match state {
                    crate::records::RrcState::Connected => "rrc_connected",
                    crate::records::RrcState::Idle => "rrc_idle",
                    crate::records::RrcState::Connecting => "rrc_connecting",
                },
                "-",
                *rnti as u64,
            ),
        };
        let _ = writeln!(out, "{},{},{},{}", g.ts.as_micros(), ev, dir, val);
    }
    out
}

/// Renders the app-stats stream (either client) as CSV.
pub fn app_to_csv(records: &[crate::records::AppStatsRecord]) -> String {
    let mut out = String::from(
        "ts_us,in_fps,in_res,vjb_ms,ajb_ms,minjb_ms,freeze,freeze_ms,concealed,audio_total,\
         out_fps,out_res,target_bps,pushback_bps,outstanding,cwnd,state,slope,threshold\n",
    );
    for a in records {
        let _ = writeln!(
            out,
            "{},{:.2},{},{:.1},{:.1},{:.1},{},{:.1},{},{},{:.2},{},{:.0},{:.0},{},{},{:?},{:.4},{:.4}",
            a.ts.as_micros(),
            a.inbound_fps,
            a.inbound_resolution.label(),
            a.video_jitter_buffer_ms,
            a.audio_jitter_buffer_ms,
            a.min_jitter_buffer_ms,
            a.freeze_active as u8,
            a.total_freeze_ms,
            a.concealed_samples,
            a.total_audio_samples,
            a.outbound_fps,
            a.outbound_resolution.label(),
            a.target_bitrate_bps,
            a.pushback_rate_bps,
            a.outstanding_bytes,
            a.cwnd_bytes,
            a.gcc_state,
            a.trendline_slope,
            a.trendline_threshold
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::SessionMeta;
    use crate::records::*;
    use simcore::{SimDuration, SimTime};

    #[test]
    fn escaping() {
        assert_eq!(escape_field("plain"), "plain");
        assert_eq!(escape_field("a,b"), "\"a,b\"");
        assert_eq!(escape_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn cdf_csv_shape() {
        let csv = cdf_to_csv(("delay_ms", "cdf"), &[(1.0, 0.5), (2.0, 1.0)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "delay_ms,cdf");
        assert!(lines[1].starts_with("1.0000,0.5000"));
    }

    #[test]
    fn packet_csv_row_count() {
        let mut b = TraceBundle::new(SessionMeta::baseline("x", SimDuration::from_secs(1), 0));
        b.packets.push(PacketRecord {
            sent: SimTime::from_millis(1),
            received: None,
            direction: Direction::Downlink,
            stream: StreamKind::Audio,
            seq: 9,
            size_bytes: 120,
        });
        let csv = packets_to_csv(&b);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("DL"));
    }

    #[test]
    fn gnb_csv_covers_all_events() {
        let mut b = TraceBundle::new(SessionMeta::baseline("x", SimDuration::from_secs(1), 0));
        b.gnb.push(GnbLogRecord {
            ts: SimTime::ZERO,
            event: GnbEvent::RlcRetx {
                direction: Direction::Uplink,
                sn: 5,
            },
        });
        b.gnb.push(GnbLogRecord {
            ts: SimTime::ZERO,
            event: GnbEvent::RrcTransition {
                state: RrcState::Idle,
                rnti: 77,
            },
        });
        let csv = gnb_to_csv(&b);
        assert!(csv.contains("rlc_retx"));
        assert!(csv.contains("rrc_idle"));
    }
}
