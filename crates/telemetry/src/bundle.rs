//! The [`TraceBundle`]: one session's worth of correlated cross-layer
//! telemetry, the interchange format between the simulators and Domino.
//!
//! All record vectors are kept sorted by timestamp; windowed access used by
//! the sliding-window detector is `O(log n + k)` via binary search.

use simcore::{SimDuration, SimTime};

use crate::records::{
    AppStatsRecord, CellClass, DciRecord, Duplexing, GnbLogRecord, PacketRecord,
    PlaybackStatsRecord,
};

/// Descriptive metadata of a capture session (one row of Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMeta {
    /// Human-readable cell name, e.g. "T-Mobile 15 MHz FDD".
    pub cell_name: String,
    /// Public carrier or private CBRS.
    pub cell_class: CellClass,
    /// Carrier frequency in MHz.
    pub carrier_mhz: f64,
    /// Channel bandwidth in MHz.
    pub bandwidth_mhz: f64,
    /// FDD or TDD.
    pub duplexing: Duplexing,
    /// Session duration.
    pub duration: SimDuration,
    /// Seed the session was generated from (0 for real captures).
    pub seed: u64,
    /// Whether gNB-internal logs are part of the bundle (private cells).
    pub has_gnb_log: bool,
}

impl SessionMeta {
    /// Metadata for a non-cellular (wired/Wi-Fi) baseline session.
    pub fn baseline(name: &str, duration: SimDuration, seed: u64) -> Self {
        SessionMeta {
            cell_name: name.to_string(),
            cell_class: CellClass::Private,
            carrier_mhz: 0.0,
            bandwidth_mhz: 0.0,
            duplexing: Duplexing::Fdd,
            duration,
            seed,
            has_gnb_log: false,
        }
    }
}

/// Event counts of a bundle normalised to per-minute rates (Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRates {
    /// DCI records per minute.
    pub dci_per_min: f64,
    /// gNB log records per minute.
    pub gnb_per_min: f64,
    /// Packet records per minute.
    pub packets_per_min: f64,
    /// WebRTC stats samples per minute (both clients).
    pub webrtc_per_min: f64,
}

/// One session's correlated cross-layer telemetry.
///
/// `app_local` is the cellular (UE-side) client; `app_remote` the wired peer.
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// Session description.
    pub meta: SessionMeta,
    /// PHY/MAC scheduling records, sorted by time.
    pub dci: Vec<DciRecord>,
    /// gNB log records (empty for commercial cells), sorted by time.
    pub gnb: Vec<GnbLogRecord>,
    /// Packet records, sorted by send time.
    pub packets: Vec<PacketRecord>,
    /// 50 ms app stats of the UE-side client, sorted by time.
    pub app_local: Vec<AppStatsRecord>,
    /// 50 ms app stats of the wired client, sorted by time.
    pub app_remote: Vec<AppStatsRecord>,
    /// 50 ms playback samples of an ABR streaming client, sorted by time
    /// (empty for RTC sessions).
    pub playback: Vec<PlaybackStatsRecord>,
}

impl TraceBundle {
    /// Creates an empty bundle with the given metadata.
    pub fn new(meta: SessionMeta) -> Self {
        TraceBundle {
            meta,
            dci: Vec::new(),
            gnb: Vec::new(),
            packets: Vec::new(),
            app_local: Vec::new(),
            app_remote: Vec::new(),
            playback: Vec::new(),
        }
    }

    /// Re-initialises the bundle for a new session described by `meta`,
    /// keeping every record vector's allocation. This is the
    /// arena-recycling half of the sweep engine's allocation contract: a
    /// worker hands its previous session's bundle back to its
    /// `SessionArena`, and the next session fills the same buffers.
    pub fn reset(&mut self, meta: SessionMeta) {
        self.meta = meta;
        self.dci.clear();
        self.gnb.clear();
        self.packets.clear();
        self.app_local.clear();
        self.app_remote.clear();
        self.playback.clear();
    }

    /// Sorts every record vector by timestamp. Simulators append records in
    /// emission order which is already time-sorted, but scripted scenarios or
    /// merged bundles may not be; detectors require sortedness.
    pub fn sort(&mut self) {
        self.dci.sort_by_key(|r| r.ts);
        self.gnb.sort_by_key(|r| r.ts);
        self.packets.sort_by_key(|r| r.sent);
        self.app_local.sort_by_key(|r| r.ts);
        self.app_remote.sort_by_key(|r| r.ts);
        self.playback.sort_by_key(|r| r.ts);
    }

    /// Verifies all record vectors are time-sorted.
    pub fn is_sorted(&self) -> bool {
        self.dci.windows(2).all(|w| w[0].ts <= w[1].ts)
            && self.gnb.windows(2).all(|w| w[0].ts <= w[1].ts)
            && self.packets.windows(2).all(|w| w[0].sent <= w[1].sent)
            && self.app_local.windows(2).all(|w| w[0].ts <= w[1].ts)
            && self.app_remote.windows(2).all(|w| w[0].ts <= w[1].ts)
            && self.playback.windows(2).all(|w| w[0].ts <= w[1].ts)
    }

    /// End of the last record in any stream (bundle horizon).
    pub fn horizon(&self) -> SimTime {
        let mut t = SimTime::ZERO;
        if let Some(r) = self.dci.last() {
            t = t.max(r.ts);
        }
        if let Some(r) = self.gnb.last() {
            t = t.max(r.ts);
        }
        if let Some(r) = self.packets.last() {
            t = t.max(r.received.unwrap_or(r.sent).max(r.sent));
        }
        if let Some(r) = self.app_local.last() {
            t = t.max(r.ts);
        }
        if let Some(r) = self.app_remote.last() {
            t = t.max(r.ts);
        }
        if let Some(r) = self.playback.last() {
            t = t.max(r.ts);
        }
        t
    }

    /// DCI records with `ts` in `[from, to)`.
    pub fn dci_window(&self, from: SimTime, to: SimTime) -> &[DciRecord] {
        window_by(&self.dci, from, to, |r| r.ts)
    }

    /// gNB records with `ts` in `[from, to)`.
    pub fn gnb_window(&self, from: SimTime, to: SimTime) -> &[GnbLogRecord] {
        window_by(&self.gnb, from, to, |r| r.ts)
    }

    /// Packets *sent* in `[from, to)`.
    pub fn packets_window(&self, from: SimTime, to: SimTime) -> &[PacketRecord] {
        window_by(&self.packets, from, to, |r| r.sent)
    }

    /// UE-client app samples in `[from, to)`.
    pub fn app_local_window(&self, from: SimTime, to: SimTime) -> &[AppStatsRecord] {
        window_by(&self.app_local, from, to, |r| r.ts)
    }

    /// Wired-client app samples in `[from, to)`.
    pub fn app_remote_window(&self, from: SimTime, to: SimTime) -> &[AppStatsRecord] {
        window_by(&self.app_remote, from, to, |r| r.ts)
    }

    /// ABR playback samples in `[from, to)`.
    pub fn playback_window(&self, from: SimTime, to: SimTime) -> &[PlaybackStatsRecord] {
        window_by(&self.playback, from, to, |r| r.ts)
    }

    /// Appends a DCI record, keeping the time-sorted invariant.
    ///
    /// Streaming producers (live captures, incremental simulators) use these
    /// hooks instead of pushing to the raw vectors and re-sorting: appends
    /// must be in non-decreasing timestamp order, which is checked in debug
    /// builds.
    pub fn append_dci(&mut self, r: DciRecord) {
        debug_assert!(
            self.dci.last().is_none_or(|l| l.ts <= r.ts),
            "unsorted DCI append"
        );
        self.dci.push(r);
    }

    /// Appends a gNB log record, tolerating out-of-order arrivals.
    ///
    /// Unlike the other streams, gNB logs are *not* emitted in timestamp
    /// order: RLC retransmissions are logged with their scheduled (future)
    /// timestamps and interleave out of order with same-slot buffer samples.
    /// Policy: an in-order record is pushed (`true`, O(1)); an out-of-order
    /// record is inserted at its stable sorted position — after all records
    /// with an equal timestamp, so a sequence of appends produces exactly
    /// what a stable [`Self::sort`] of the emission order would (`false`,
    /// O(n) worst case, O(displacement) memmove in practice). Records are
    /// never rejected here; consumers that need bounded-lateness *rejection*
    /// (with drop accounting) should use the `domino-live` reorder stage
    /// instead of the bundle.
    pub fn append_gnb(&mut self, r: GnbLogRecord) -> bool {
        if self.gnb.last().is_none_or(|l| l.ts <= r.ts) {
            self.gnb.push(r);
            true
        } else {
            let at = self.gnb.partition_point(|x| x.ts <= r.ts);
            self.gnb.insert(at, r);
            false
        }
    }

    /// Appends a packet record in send-time order (see [`Self::append_dci`]).
    pub fn append_packet(&mut self, r: PacketRecord) {
        debug_assert!(
            self.packets.last().is_none_or(|l| l.sent <= r.sent),
            "unsorted packet append"
        );
        self.packets.push(r);
    }

    /// Appends a UE-client stats sample in timestamp order.
    pub fn append_app_local(&mut self, r: AppStatsRecord) {
        debug_assert!(
            self.app_local.last().is_none_or(|l| l.ts <= r.ts),
            "unsorted app_local append"
        );
        self.app_local.push(r);
    }

    /// Appends a wired-client stats sample in timestamp order.
    pub fn append_app_remote(&mut self, r: AppStatsRecord) {
        debug_assert!(
            self.app_remote.last().is_none_or(|l| l.ts <= r.ts),
            "unsorted app_remote append"
        );
        self.app_remote.push(r);
    }

    /// Appends an ABR playback sample in timestamp order.
    pub fn append_playback(&mut self, r: PlaybackStatsRecord) {
        debug_assert!(
            self.playback.last().is_none_or(|l| l.ts <= r.ts),
            "unsorted playback append"
        );
        self.playback.push(r);
    }

    /// Starts an incremental read cursor at the beginning of every stream.
    pub fn cursor(&self) -> TraceCursor {
        TraceCursor::default()
    }

    /// All records that arrived since `cur`, restricted to timestamps before
    /// `t`, as one slice per stream; advances the cursor past them.
    ///
    /// This is the incremental-ingestion hook the streaming analyzer drives:
    /// calling it with a monotonically increasing `t` visits every record of
    /// each stream exactly once, in that stream's time order, in `O(log n)`
    /// per call plus `O(1)` per record returned.
    pub fn advance_until<'a>(&'a self, cur: &mut TraceCursor, t: SimTime) -> StreamSlices<'a> {
        fn take<'v, T>(
            v: &'v [T],
            pos: &mut usize,
            t: SimTime,
            key: impl Fn(&T) -> SimTime,
        ) -> &'v [T] {
            let start = *pos;
            let hi = start + v[start..].partition_point(|r| key(r) < t);
            *pos = hi;
            &v[start..hi]
        }
        StreamSlices {
            dci: take(&self.dci, &mut cur.dci, t, |r| r.ts),
            gnb: take(&self.gnb, &mut cur.gnb, t, |r| r.ts),
            packets: take(&self.packets, &mut cur.packets, t, |r| r.sent),
            app_local: take(&self.app_local, &mut cur.app_local, t, |r| r.ts),
            app_remote: take(&self.app_remote, &mut cur.app_remote, t, |r| r.ts),
            playback: take(&self.playback, &mut cur.playback, t, |r| r.ts),
        }
    }

    /// Total records across all six streams.
    pub fn total_records(&self) -> usize {
        self.dci.len()
            + self.gnb.len()
            + self.packets.len()
            + self.app_local.len()
            + self.app_remote.len()
            + self.playback.len()
    }

    /// Drops every record `cur` has already consumed (the prefix of each
    /// stream behind its cursor position) and rebases `cur` to the start of
    /// the compacted bundle, returning how many records were pruned.
    ///
    /// This is the constant-memory half of the incremental-ingestion
    /// contract: a live consumer appends records as they arrive, reads them
    /// once through [`Self::advance_until`], and prunes the consumed prefix
    /// each time a window closes — so the retained trace stays
    /// O(window + reorder lateness) instead of O(session). The cursor stays
    /// valid across the prune; any slices previously returned by
    /// [`Self::advance_until`] do not (they borrow the pruned storage), so
    /// prune only between read batches.
    pub fn prune_consumed(&mut self, cur: &mut TraceCursor) -> usize {
        let pruned =
            cur.dci + cur.gnb + cur.packets + cur.app_local + cur.app_remote + cur.playback;
        self.dci.drain(..cur.dci);
        self.gnb.drain(..cur.gnb);
        self.packets.drain(..cur.packets);
        self.app_local.drain(..cur.app_local);
        self.app_remote.drain(..cur.app_remote);
        self.playback.drain(..cur.playback);
        *cur = TraceCursor::default();
        pruned
    }

    /// Per-minute event rates (Table 1 columns).
    pub fn event_rates(&self) -> EventRates {
        let minutes = (self.meta.duration.as_secs_f64() / 60.0).max(1e-9);
        EventRates {
            dci_per_min: self.dci.len() as f64 / minutes,
            gnb_per_min: self.gnb.len() as f64 / minutes,
            packets_per_min: self.packets.len() as f64 / minutes,
            webrtc_per_min: (self.app_local.len() + self.app_remote.len()) as f64 / minutes,
        }
    }
}

/// Read position into each stream of a [`TraceBundle`], for incremental
/// consumption via [`TraceBundle::advance_until`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCursor {
    dci: usize,
    gnb: usize,
    packets: usize,
    app_local: usize,
    app_remote: usize,
    playback: usize,
}

/// One batch of newly visible records, one slice per stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamSlices<'a> {
    /// New DCI records.
    pub dci: &'a [DciRecord],
    /// New gNB log records.
    pub gnb: &'a [GnbLogRecord],
    /// New packet records (by send time).
    pub packets: &'a [PacketRecord],
    /// New UE-client stats samples.
    pub app_local: &'a [AppStatsRecord],
    /// New wired-client stats samples.
    pub app_remote: &'a [AppStatsRecord],
    /// New ABR playback samples.
    pub playback: &'a [PlaybackStatsRecord],
}

impl StreamSlices<'_> {
    /// Total records across all six streams.
    pub fn len(&self) -> usize {
        self.dci.len()
            + self.gnb.len()
            + self.packets.len()
            + self.app_local.len()
            + self.app_remote.len()
            + self.playback.len()
    }

    /// Whether no stream produced a record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Half-open time-window slice of a sorted vector via binary search.
fn window_by<T>(v: &[T], from: SimTime, to: SimTime, key: impl Fn(&T) -> SimTime) -> &[T] {
    let lo = v.partition_point(|r| key(r) < from);
    let hi = v.partition_point(|r| key(r) < to);
    &v[lo..hi]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{Direction, StreamKind};

    fn meta() -> SessionMeta {
        SessionMeta::baseline("test", SimDuration::from_secs(60), 1)
    }

    fn pkt(ms: u64) -> PacketRecord {
        PacketRecord {
            sent: SimTime::from_millis(ms),
            received: Some(SimTime::from_millis(ms + 20)),
            direction: Direction::Uplink,
            stream: StreamKind::Video,
            seq: ms,
            size_bytes: 1000,
        }
    }

    #[test]
    fn windowing_is_half_open() {
        let mut b = TraceBundle::new(meta());
        for ms in [0, 100, 200, 300, 400] {
            b.packets.push(pkt(ms));
        }
        let w = b.packets_window(SimTime::from_millis(100), SimTime::from_millis(300));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].seq, 100);
        assert_eq!(w[1].seq, 200);
    }

    #[test]
    fn sort_restores_invariant() {
        let mut b = TraceBundle::new(meta());
        b.packets.push(pkt(500));
        b.packets.push(pkt(100));
        assert!(!b.is_sorted());
        b.sort();
        assert!(b.is_sorted());
    }

    #[test]
    fn horizon_covers_receive_times() {
        let mut b = TraceBundle::new(meta());
        b.packets.push(pkt(100));
        assert_eq!(b.horizon(), SimTime::from_millis(120));
    }

    #[test]
    fn event_rates_normalised_per_minute() {
        let mut b = TraceBundle::new(meta());
        for ms in 0..120 {
            b.packets.push(pkt(ms));
        }
        let r = b.event_rates();
        assert!((r.packets_per_min - 120.0).abs() < 1e-9);
        assert_eq!(r.gnb_per_min, 0.0);
    }

    #[test]
    fn cursor_visits_each_record_once_in_order() {
        let mut b = TraceBundle::new(meta());
        for ms in [0, 100, 200, 300, 400] {
            b.append_packet(pkt(ms));
        }
        let mut cur = b.cursor();
        let first = b.advance_until(&mut cur, SimTime::from_millis(250));
        assert_eq!(first.packets.len(), 3);
        assert_eq!(first.len(), 3);
        // Same horizon again: nothing new.
        let again = b.advance_until(&mut cur, SimTime::from_millis(250));
        assert!(again.is_empty());
        // Advance to the end: exactly the remaining two.
        let rest = b.advance_until(&mut cur, SimTime::from_secs(10));
        assert_eq!(rest.packets.len(), 2);
        assert_eq!(rest.packets[0].seq, 300);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unsorted packet append")]
    fn append_rejects_time_travel() {
        let mut b = TraceBundle::new(meta());
        b.append_packet(pkt(500));
        b.append_packet(pkt(100));
    }

    #[test]
    fn append_gnb_tolerates_out_of_order() {
        use crate::records::GnbEvent;
        let gnb = |ms: u64, sn: u32| GnbLogRecord {
            ts: SimTime::from_millis(ms),
            event: GnbEvent::RlcRetx {
                direction: Direction::Uplink,
                sn,
            },
        };
        // Emission order with future timestamps and equal-ts interleaving,
        // as the cell simulator produces them.
        let emitted = [
            gnb(10, 0),
            gnb(30, 1),
            gnb(20, 2),
            gnb(20, 3),
            gnb(5, 4),
            gnb(30, 5),
        ];
        let mut appended = TraceBundle::new(meta());
        let mut in_order = Vec::new();
        for r in emitted.clone() {
            in_order.push(appended.append_gnb(r));
        }
        assert_eq!(in_order, [true, true, false, false, false, true]);
        assert!(appended.is_sorted());
        // Must match a stable sort of the emission order exactly.
        let mut sorted = TraceBundle::new(meta());
        sorted.gnb = emitted.to_vec();
        sorted.sort();
        let sns = |b: &TraceBundle| -> Vec<u32> {
            b.gnb
                .iter()
                .map(|r| match r.event {
                    GnbEvent::RlcRetx { sn, .. } => sn,
                    _ => unreachable!(),
                })
                .collect()
        };
        assert_eq!(sns(&appended), sns(&sorted));
        assert_eq!(sns(&appended), vec![4, 0, 2, 3, 1, 5]);
    }

    #[test]
    fn prune_consumed_rebases_cursor() {
        let mut b = TraceBundle::new(meta());
        for ms in [0, 100, 200, 300, 400] {
            b.append_packet(pkt(ms));
        }
        let mut cur = b.cursor();
        let first = b.advance_until(&mut cur, SimTime::from_millis(250));
        assert_eq!(first.packets.len(), 3);
        let pruned = b.prune_consumed(&mut cur);
        assert_eq!(pruned, 3);
        assert_eq!(b.total_records(), 2);
        // The rebased cursor continues exactly where it left off.
        let rest = b.advance_until(&mut cur, SimTime::from_secs(10));
        assert_eq!(rest.packets.len(), 2);
        assert_eq!(rest.packets[0].seq, 300);
        // Pruning with a fresh-at-zero cursor is a no-op.
        assert_eq!(b.prune_consumed(&mut TraceCursor::default()), 0);
    }

    #[test]
    fn empty_window_on_empty_bundle() {
        let b = TraceBundle::new(meta());
        assert!(b
            .packets_window(SimTime::ZERO, SimTime::from_secs(10))
            .is_empty());
        assert_eq!(b.horizon(), SimTime::ZERO);
    }
}
