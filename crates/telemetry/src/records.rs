//! Record types for each telemetry source.
//!
//! Field choices mirror what the paper's tooling captures: NR-Scope DCI
//! decodes (§3: "traffic scheduling information and retransmission events"),
//! Amarisoft gNB logs (RLC buffer status / retransmissions, RRC state), packet
//! traces at both clients, and the instrumented libwebrtc client's 50 ms stats
//! (frame rate, resolution, freezes, jitter-buffer delay, plus GCC internals:
//! delay variation slope, perceived network state, target bitrate, pushback
//! rate).

use simcore::SimTime;

/// Transmission direction relative to the UE: uplink = UE → network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// UE → gNB → wired peer.
    Uplink,
    /// Wired peer → gNB → UE.
    Downlink,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Uplink => Direction::Downlink,
            Direction::Downlink => Direction::Uplink,
        }
    }

    /// Short label used in reports ("UL"/"DL").
    pub fn label(self) -> &'static str {
        match self {
            Direction::Uplink => "UL",
            Direction::Downlink => "DL",
        }
    }
}

/// Duplexing mode of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Duplexing {
    /// Separate UL/DL carriers; every slot carries both directions.
    Fdd,
    /// Shared carrier; a slot pattern alternates DL/special/UL slots.
    Tdd,
}

/// Whether a cell is a public carrier cell or a private CBRS small cell.
///
/// The distinction matters for observability: the paper only had gNB-internal
/// logs (RLC, RRC) on the private cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellClass {
    /// Public carrier network (T-Mobile in the paper).
    Commercial,
    /// Private CBRS deployment (Amarisoft, Mosolabs in the paper).
    Private,
}

/// Media stream classification of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// RTP video.
    Video,
    /// RTP audio.
    Audio,
    /// RTCP feedback (transport-wide CC, receiver reports).
    Rtcp,
}

/// One decoded DCI / scheduled transport block.
#[derive(Debug, Clone)]
pub struct DciRecord {
    /// Slot start time of the grant/assignment.
    pub ts: SimTime,
    /// Radio Network Temporary Identifier of the scheduled UE.
    pub rnti: u32,
    /// Whether the TB is on the uplink or downlink.
    pub direction: Direction,
    /// `true` if this TB belongs to the experiment UE (RNTI tracking as in
    /// NR-Scope); cross-traffic UEs are `false`.
    pub is_target_ue: bool,
    /// Number of physical resource blocks allocated.
    pub n_prbs: u16,
    /// Modulation and coding scheme index (0–28, 38.214 table 5.1.3.1-1).
    pub mcs: u8,
    /// Transport block size in bits.
    pub tbs_bits: u32,
    /// HARQ process id.
    pub harq_id: u8,
    /// 0 for an initial transmission, n for the n-th HARQ retransmission.
    pub harq_retx_idx: u8,
    /// Whether decoding of this TB succeeded at the receiver.
    pub decoded_ok: bool,
    /// `true` when the grant was issued proactively (before any BSR), as the
    /// Mosolabs cell does; always `false` on the downlink.
    pub proactive: bool,
    /// Payload bits actually used by RLC data (≤ `tbs_bits`); the gap is the
    /// padding/waste visible as unfilled bars in Fig. 16.
    pub used_bits: u32,
}

/// RRC connection state of the UE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrcState {
    /// Active data transfer possible.
    Connected,
    /// Released; no scheduling possible.
    Idle,
    /// Connection (re-)establishment in progress.
    Connecting,
}

/// An entry of the gNB-internal log (private cells only).
#[derive(Debug, Clone, PartialEq)]
pub enum GnbEvent {
    /// RLC ARQ retransmission of sequence number `sn`.
    RlcRetx {
        /// Direction of the retransmitted RLC PDU.
        direction: Direction,
        /// RLC sequence number.
        sn: u32,
    },
    /// Periodic RLC transmit-buffer occupancy sample.
    RlcBuffer {
        /// Direction of the buffer (UL = UE-side buffer, DL = gNB-side).
        direction: Direction,
        /// Queued bytes awaiting first transmission or retransmission.
        bytes: u64,
    },
    /// RRC state change of the experiment UE.
    RrcTransition {
        /// New state.
        state: RrcState,
        /// RNTI after the transition (changes on re-establishment).
        rnti: u32,
    },
}

/// A timestamped gNB log record.
#[derive(Debug, Clone)]
pub struct GnbLogRecord {
    /// Log timestamp.
    pub ts: SimTime,
    /// The logged event.
    pub event: GnbEvent,
}

/// One captured packet, correlated across both capture points.
#[derive(Debug, Clone)]
pub struct PacketRecord {
    /// Transmission time at the sender's capture point.
    pub sent: SimTime,
    /// Arrival time at the receiver's capture point; `None` if lost.
    pub received: Option<SimTime>,
    /// Direction relative to the UE.
    pub direction: Direction,
    /// Media stream classification.
    pub stream: StreamKind,
    /// Transport-wide sequence number (per direction).
    pub seq: u64,
    /// Size on the wire in bytes.
    pub size_bytes: u32,
}

impl PacketRecord {
    /// One-way delay, if the packet arrived.
    pub fn one_way_delay(&self) -> Option<simcore::SimDuration> {
        self.received.map(|r| r.saturating_since(self.sent))
    }
}

/// Video resolution rungs of the encoder ladder (Table 3 categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resolution {
    /// 320×180.
    R180p,
    /// 640×360.
    R360p,
    /// 960×540.
    R540p,
    /// 1280×720.
    R720p,
    /// 1920×1080.
    R1080p,
}

impl Resolution {
    /// Vertical pixel count.
    pub fn height(self) -> u32 {
        match self {
            Resolution::R180p => 180,
            Resolution::R360p => 360,
            Resolution::R540p => 540,
            Resolution::R720p => 720,
            Resolution::R1080p => 1080,
        }
    }

    /// Label as printed in Table 3.
    pub fn label(self) -> &'static str {
        match self {
            Resolution::R180p => "180p",
            Resolution::R360p => "360p",
            Resolution::R540p => "540p",
            Resolution::R720p => "720p",
            Resolution::R1080p => "1080p",
        }
    }

    /// All rungs, ascending.
    pub const ALL: [Resolution; 5] = [
        Resolution::R180p,
        Resolution::R360p,
        Resolution::R540p,
        Resolution::R720p,
        Resolution::R1080p,
    ];
}

/// GCC delay-based estimator's perceived network state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GccNetworkState {
    /// Delay gradient below threshold band.
    Underuse,
    /// Delay gradient within threshold band.
    Normal,
    /// Delay gradient above threshold band — congestion building.
    Overuse,
}

/// One 50 ms sample of the instrumented WebRTC client.
///
/// Combines the standard `webrtc-stats` fields the paper cites with the GCC
/// internals its custom client exposes. A session yields two streams of
/// these: one per client.
#[derive(Debug, Clone)]
pub struct AppStatsRecord {
    /// Sample time.
    pub ts: SimTime,
    // ---- Receive side ----
    /// Decoded-and-rendered inbound video frame rate (fps).
    pub inbound_fps: f64,
    /// Inbound video resolution currently rendered.
    pub inbound_resolution: Resolution,
    /// Current video jitter-buffer delay (ms).
    pub video_jitter_buffer_ms: f64,
    /// Current audio jitter-buffer delay (ms).
    pub audio_jitter_buffer_ms: f64,
    /// Minimum playout delay the adaptive buffer will shrink to (ms).
    pub min_jitter_buffer_ms: f64,
    /// `true` while the inbound video is in a frozen state.
    pub freeze_active: bool,
    /// Cumulative total freeze duration (ms).
    pub total_freeze_ms: f64,
    /// Cumulative concealed audio samples.
    pub concealed_samples: u64,
    /// Cumulative played-out audio samples (concealed + normal).
    pub total_audio_samples: u64,
    // ---- Send side ----
    /// Outbound encoded video frame rate (fps).
    pub outbound_fps: f64,
    /// Outbound video resolution.
    pub outbound_resolution: Resolution,
    /// GCC target bitrate (bits/s) from the bandwidth estimator.
    pub target_bitrate_bps: f64,
    /// Final pacer/encoder rate after congestion-window pushback (bits/s).
    pub pushback_rate_bps: f64,
    /// Bytes sent but not yet acknowledged via transport feedback.
    pub outstanding_bytes: u64,
    /// GCC congestion-window size (bytes).
    pub cwnd_bytes: u64,
    /// Delay-based estimator state.
    pub gcc_state: GccNetworkState,
    /// Trendline filter slope (ms per packet-group, GCC internal).
    pub trendline_slope: f64,
    /// Adaptive overuse threshold the slope is compared against.
    pub trendline_threshold: f64,
}

/// One 50 ms sample of an ABR streaming client's playback state.
///
/// The streaming analogue of [`AppStatsRecord`]: where the RTC client
/// reports jitter-buffer and GCC internals, the ABR client reports its
/// playback buffer, stall accounting, and ladder position. A streaming
/// session yields exactly one of these streams (the client side); the
/// segment server has no player state to sample.
#[derive(Debug, Clone)]
pub struct PlaybackStatsRecord {
    /// Sample time.
    pub ts: SimTime,
    /// Media buffered ahead of the playhead (ms).
    pub buffer_ms: f64,
    /// `true` once initial startup buffering completed and playback began.
    pub started: bool,
    /// `true` while playback is stalled (rebuffering after start).
    pub stalled: bool,
    /// Cumulative stall (rebuffering) time since start (ms).
    pub total_stall_ms: f64,
    /// Number of distinct stall events so far.
    pub stall_count: u32,
    /// Ladder rung index currently playing (0 = lowest).
    pub rung: u8,
    /// Resolution of the currently playing rung.
    pub resolution: Resolution,
    /// Rung index the controller most recently requested.
    pub target_rung: u8,
    /// Controller's smoothed throughput estimate (bits/s; 0 before the
    /// first segment completes).
    pub est_throughput_bps: f64,
    /// Segments fully downloaded so far.
    pub segments_fetched: u32,
}

impl PlaybackStatsRecord {
    /// A neutral sample at `ts` (session start, before any segment flows).
    pub fn baseline(ts: SimTime) -> Self {
        PlaybackStatsRecord {
            ts,
            buffer_ms: 0.0,
            started: false,
            stalled: false,
            total_stall_ms: 0.0,
            stall_count: 0,
            rung: 0,
            resolution: Resolution::R180p,
            target_rung: 0,
            est_throughput_bps: 0.0,
            segments_fetched: 0,
        }
    }
}

impl AppStatsRecord {
    /// A neutral sample at `ts` (session start, before any media flows).
    pub fn baseline(ts: SimTime) -> Self {
        AppStatsRecord {
            ts,
            inbound_fps: 0.0,
            inbound_resolution: Resolution::R360p,
            video_jitter_buffer_ms: 0.0,
            audio_jitter_buffer_ms: 0.0,
            min_jitter_buffer_ms: 0.0,
            freeze_active: false,
            total_freeze_ms: 0.0,
            concealed_samples: 0,
            total_audio_samples: 0,
            outbound_fps: 0.0,
            outbound_resolution: Resolution::R360p,
            target_bitrate_bps: 300_000.0,
            pushback_rate_bps: 300_000.0,
            outstanding_bytes: 0,
            cwnd_bytes: u64::MAX / 2,
            gcc_state: GccNetworkState::Normal,
            trendline_slope: 0.0,
            trendline_threshold: 12.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    #[test]
    fn direction_reverse_is_involution() {
        assert_eq!(Direction::Uplink.reverse(), Direction::Downlink);
        assert_eq!(Direction::Uplink.reverse().reverse(), Direction::Uplink);
        assert_eq!(Direction::Uplink.label(), "UL");
    }

    #[test]
    fn packet_delay() {
        let p = PacketRecord {
            sent: SimTime::from_millis(10),
            received: Some(SimTime::from_millis(45)),
            direction: Direction::Uplink,
            stream: StreamKind::Video,
            seq: 1,
            size_bytes: 1200,
        };
        assert_eq!(p.one_way_delay(), Some(SimDuration::from_millis(35)));
        let lost = PacketRecord {
            received: None,
            ..p
        };
        assert_eq!(lost.one_way_delay(), None);
    }

    #[test]
    fn resolution_order_matches_height() {
        for pair in Resolution::ALL.windows(2) {
            assert!(pair[0] < pair[1]);
            assert!(pair[0].height() < pair[1].height());
        }
        assert_eq!(Resolution::R540p.label(), "540p");
    }
}
