//! Degraded-telemetry vocabulary shared by the live pipeline, the
//! scenario grid, and the sweep harness.
//!
//! Real capture pipelines misbehave: records arrive late, duplicated,
//! clock-skewed, or not at all. This module holds the *descriptions* of
//! that degradation — which tap stream is affected ([`TapStream`]), what
//! fault is injected ([`TapFault`] / [`TapChaosSpec`]), and how the
//! watermark lateness bound should respond ([`Lateness`]). The machinery
//! that acts on these descriptions lives in `domino-live` (the `ChaosTap`
//! wrapper and the adaptive delay estimator); keeping the types here lets
//! `scenarios` put degraded-telemetry cells on a sweep grid without
//! depending on the live crate.

use simcore::{SimDuration, SimTime};

/// One of the six per-session tap streams a [`crate::LiveTap`] consumes.
///
/// Not to be confused with [`crate::StreamKind`], which classifies the
/// *media* carried by a packet; a `TapStream` names a telemetry *source*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TapStream {
    /// UE-side (local) app-stats samples.
    AppLocal,
    /// Wired-side (remote) app-stats samples.
    AppRemote,
    /// ABR playback samples.
    Playback,
    /// DCI decodes.
    Dci,
    /// gNB log records.
    Gnb,
    /// Packet send/delivery events.
    Packet,
}

impl TapStream {
    /// Number of tap streams.
    pub const COUNT: usize = 6;

    /// All streams, in declaration order (the per-stream array order used
    /// by fault logs and per-stream stats).
    pub const ALL: [TapStream; Self::COUNT] = [
        TapStream::AppLocal,
        TapStream::AppRemote,
        TapStream::Playback,
        TapStream::Dci,
        TapStream::Gnb,
        TapStream::Packet,
    ];

    /// Stable short name (reports, fault logs).
    pub fn name(self) -> &'static str {
        match self {
            TapStream::AppLocal => "app_local",
            TapStream::AppRemote => "app_remote",
            TapStream::Playback => "playback",
            TapStream::Dci => "dci",
            TapStream::Gnb => "gnb",
            TapStream::Packet => "packet",
        }
    }

    /// Index into per-stream arrays (declaration order).
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }
}

/// How the live watermark lateness bound is chosen.
///
/// `Static` is the original behaviour: one fixed bound for the whole
/// session. `Adaptive` sets the bound per session from an online
/// per-stream delay estimator: the bound tracks the `target_quantile` of
/// observed record delays, clamped to `[floor, ceil]` — trading verdict
/// latency against late-drop risk per cell instead of one global bound.
/// With `floor == ceil` the clamp pins the bound, so
/// `Adaptive { floor: s, ceil: s, .. }` is byte-identical to `Static(s)`
/// (property-tested in `tests/live_chaos.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lateness {
    /// A fixed lateness bound.
    Static(SimDuration),
    /// Bound follows a delay-distribution quantile, clamped to
    /// `[floor, ceil]`. Until the estimator has seen enough samples the
    /// bound stays at `ceil` (conservative start).
    Adaptive {
        /// Target quantile of the observed delay distribution, in
        /// `[0, 1]`; the estimator rounds up to a histogram bucket upper
        /// bound, so the realised coverage is at least this.
        target_quantile: f64,
        /// Lower clamp on the bound.
        floor: SimDuration,
        /// Upper clamp on the bound (also the cold-start bound).
        ceil: SimDuration,
    },
}

impl Lateness {
    /// The largest bound this policy can ever choose — what memory-bound
    /// reasoning (retained records are O(window + lateness)) should use.
    pub fn max_bound(&self) -> SimDuration {
        match *self {
            Lateness::Static(s) => s,
            Lateness::Adaptive { ceil, .. } => ceil,
        }
    }
}

/// One scripted telemetry fault. Probabilities are integer percentages so
/// specs stay `Eq`-comparable and wire-encodable without float formatting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapFault {
    /// Drop `pct`% of the stream's records (seeded per-record roll).
    Drop { stream: TapStream, pct: u8 },
    /// Duplicate `pct`% of the stream's records (the copy is forwarded
    /// back-to-back). Not applicable to [`TapStream::Packet`]: a packet's
    /// emission id is unique, so a duplicate would be a different packet.
    Duplicate { stream: TapStream, pct: u8 },
    /// Delay `pct`% of the stream's records by a seeded amount in
    /// `(0, max_delay]`; delayed records are re-emitted in `(release
    /// time, original order)` order — a reorder burst from the consumer's
    /// point of view. Not applicable to [`TapStream::Packet`].
    Delay {
        stream: TapStream,
        pct: u8,
        max_delay: SimDuration,
    },
    /// Shift every record timestamp on the stream `skew` behind its true
    /// value — a slow capture clock. Not applicable to
    /// [`TapStream::Packet`].
    SkewBehind {
        stream: TapStream,
        skew: SimDuration,
    },
    /// Black out the stream completely for `[from, to)`: every record
    /// whose (true) timestamp falls in the span is swallowed.
    Blackout {
        stream: TapStream,
        from: SimTime,
        to: SimTime,
    },
}

impl TapFault {
    /// The stream this fault acts on.
    pub fn stream(&self) -> TapStream {
        match *self {
            TapFault::Drop { stream, .. }
            | TapFault::Duplicate { stream, .. }
            | TapFault::Delay { stream, .. }
            | TapFault::SkewBehind { stream, .. }
            | TapFault::Blackout { stream, .. } => stream,
        }
    }
}

/// A seeded telemetry fault script, carried by scenario specs so degraded
/// cells are sweepable. Deterministic: given the same spec and the same
/// event sequence, the injected faults are identical regardless of thread
/// count, shard count, or multiplex width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapChaosSpec {
    /// Seed for the per-record fault rolls (independent of the session's
    /// simulation seed, so chaos can vary while the session stays fixed).
    pub seed: u64,
    /// The faults, applied per record in declaration order.
    pub faults: Vec<TapFault>,
}

impl TapChaosSpec {
    /// An empty script (valid; injects nothing).
    pub fn new(seed: u64) -> Self {
        TapChaosSpec {
            seed,
            faults: Vec::new(),
        }
    }

    /// Appends one fault (builder style).
    pub fn fault(mut self, f: TapFault) -> Self {
        self.faults.push(f);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_indices_match_declaration_order() {
        for (i, s) in TapStream::ALL.iter().enumerate() {
            assert_eq!(s.idx(), i);
        }
        assert_eq!(TapStream::COUNT, TapStream::ALL.len());
    }

    #[test]
    fn lateness_max_bound() {
        let s = SimDuration::from_secs(5);
        assert_eq!(Lateness::Static(s).max_bound(), s);
        let a = Lateness::Adaptive {
            target_quantile: 0.99,
            floor: SimDuration::from_millis(250),
            ceil: s,
        };
        assert_eq!(a.max_bound(), s);
    }

    #[test]
    fn chaos_spec_builder_appends_in_order() {
        let spec = TapChaosSpec::new(7)
            .fault(TapFault::Drop {
                stream: TapStream::Gnb,
                pct: 10,
            })
            .fault(TapFault::Blackout {
                stream: TapStream::Dci,
                from: SimTime::from_secs(2),
                to: SimTime::from_secs(4),
            });
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.faults.len(), 2);
        assert_eq!(spec.faults[0].stream(), TapStream::Gnb);
        assert_eq!(spec.faults[1].stream(), TapStream::Dci);
    }
}
