//! # telemetry — cross-layer trace records and time-series utilities
//!
//! The paper's measurement pipeline correlates four telemetry sources:
//!
//! 1. **5G PHY/MAC scheduling** — per-transport-block DCI decodes (NR-Scope),
//!    here [`DciRecord`].
//! 2. **gNB logs** — RLC buffer/retransmission and RRC state events, available
//!    only on the private cells, here [`GnbLogRecord`].
//! 3. **Packet traces** — per-packet send/receive timestamps at both clients,
//!    here [`PacketRecord`].
//! 4. **Instrumented WebRTC stats** at 50 ms granularity including GCC
//!    internals, here [`AppStatsRecord`].
//!
//! A complete two-party session's worth of all four sources is a
//! [`TraceBundle`], the interchange format between the simulators
//! (`ran-sim`, `rtc-sim`, `scenarios`) and the Domino detector
//! (`domino-core`). The [`series`] module provides the CDF/quantile helpers
//! the benchmark harness uses to print paper-shaped figures.

pub mod bundle;
pub mod csv;
pub mod degrade;
pub mod livetap;
pub mod records;
pub mod series;

pub use bundle::{SessionMeta, StreamSlices, TraceBundle, TraceCursor};
pub use degrade::{Lateness, TapChaosSpec, TapFault, TapStream};
pub use livetap::{LiveTap, NullTap};
pub use records::{
    AppStatsRecord, CellClass, DciRecord, Direction, Duplexing, GccNetworkState, GnbEvent,
    GnbLogRecord, PacketRecord, PlaybackStatsRecord, Resolution, RrcState, StreamKind,
};
pub use series::{Cdf, SummaryStats, CDF_GRID};
