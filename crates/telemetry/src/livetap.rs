//! The [`LiveTap`] trait: the emission-time hook a session engine drives so
//! consumers can diagnose a call *while it is running*, instead of waiting
//! for the completed [`crate::TraceBundle`].
//!
//! The contract mirrors what a real capture pipeline sees:
//!
//! * **Packets** are announced twice — once at *send* time (fate unknown,
//!   [`LiveTap::on_packet_sent`] with `received == None`) and, if the packet
//!   makes it across, once at *delivery* time
//!   ([`LiveTap::on_packet_delivered`]). Lost packets simply never get a
//!   delivery event; it is the consumer's job to decide when to give up on
//!   one (the `domino-live` pipeline uses a watermark with bounded lateness).
//!   The `id` is a per-session sequence number assigned in emission order, so
//!   `(record.sent, id)` reproduces exactly the stable `sort_by_key(sent)`
//!   order of the finished bundle's packet vector — tie-aware consumers can
//!   reconstruct the batch ingestion order bit for bit.
//! * **App stats / DCI** arrive in timestamp order, at their timestamps.
//! * **gNB log records** arrive in *emission* order, which is not timestamp
//!   order: RLC retransmissions are logged with their scheduled (future)
//!   timestamps and interleave out of order with same-slot buffer samples.
//!   Consumers must reorder (see `domino-live`'s watermark stage).
//! * [`LiveTap::on_tick`] marks the advance of session time — the clock a
//!   watermark is derived from. [`LiveTap::on_finish`] is called exactly once
//!   when the session ends (normally or via early exit).
//! * [`LiveTap::should_stop`] lets the consumer abort the session early
//!   (e.g. once a diagnosis verdict is stable); the engine polls it every
//!   tick.
//!
//! All methods have empty defaults so partial taps stay terse.

use simcore::SimTime;

use crate::records::{AppStatsRecord, DciRecord, GnbLogRecord, PacketRecord, PlaybackStatsRecord};

/// Emission-time consumer of one session's cross-layer telemetry.
pub trait LiveTap {
    /// A UE-side (local) app-stats sample was taken at `r.ts`.
    fn on_app_local(&mut self, _r: &AppStatsRecord) {}

    /// A wired-side (remote) app-stats sample was taken at `r.ts`.
    fn on_app_remote(&mut self, _r: &AppStatsRecord) {}

    /// An ABR playback sample was taken at `r.ts` (streaming sessions only;
    /// samples arrive in timestamp order like app stats).
    fn on_playback(&mut self, _r: &PlaybackStatsRecord) {}

    /// A DCI record was captured (records arrive in timestamp order).
    fn on_dci(&mut self, _r: &DciRecord) {}

    /// A gNB log record was captured (records arrive in **emission** order,
    /// which may run ahead of or behind timestamp order — see module docs).
    fn on_gnb(&mut self, _r: &GnbLogRecord) {}

    /// A packet entered the network at `r.sent`; `r.received` is `None` and
    /// its fate is not yet known. `id` increases in emission order.
    fn on_packet_sent(&mut self, _id: u64, _r: &PacketRecord) {}

    /// The packet announced as `id` was delivered at `at`.
    fn on_packet_delivered(&mut self, _id: u64, _at: SimTime) {}

    /// Session time advanced to `now` (called once per engine tick, after
    /// all of the tick's records were emitted).
    fn on_tick(&mut self, _now: SimTime) {}

    /// The session ended at `now` — no further events will arrive.
    fn on_finish(&mut self, _now: SimTime) {}

    /// Polled every tick; returning `true` aborts the session (early exit).
    fn should_stop(&self) -> bool {
        false
    }

    /// Whether this tap consumes events at all. Engines may skip tap-only
    /// work (e.g. per-tick telemetry draining) when this returns `false`.
    fn is_active(&self) -> bool {
        true
    }
}

/// A tap that ignores everything — useful as a default and in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTap;

impl LiveTap for NullTap {
    fn is_active(&self) -> bool {
        false
    }
}
