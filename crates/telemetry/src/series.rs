//! Empirical CDFs, quantiles and summary statistics.
//!
//! Every figure in the paper's evaluation is either a CDF (Figs. 2, 3, 5, 6,
//! 8), a bar of fractions (Fig. 4, 10), or a time series (Figs. 12–22). This
//! module implements the first two; time series are printed directly from the
//! record vectors.

/// An empirical cumulative distribution function over `f64` samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples; non-finite values are dropped.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples compare"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `p`-quantile (0 ≤ p ≤ 1), linear interpolation between order
    /// statistics. Returns `None` on an empty CDF.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let pos = p * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac)
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Fraction of samples strictly below `x` — the CDF value F(x⁻).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v < x);
        n as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples ≤ `x` — the CDF value F(x).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// (value, cumulative-fraction) pairs at the given quantile grid —
    /// the series the `repro` harness prints for CDF figures.
    pub fn series(&self, quantiles: &[f64]) -> Vec<(f64, f64)> {
        quantiles
            .iter()
            .filter_map(|&p| self.quantile(p).map(|v| (v, p)))
            .collect()
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }
}

/// Mean / sd / min / max / count of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl SummaryStats {
    /// Computes summary statistics; returns `None` for an empty iterator.
    pub fn of(samples: impl IntoIterator<Item = f64>) -> Option<SummaryStats> {
        let mut count = 0usize;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for x in samples {
            count += 1;
            sum += x;
            sum2 += x * x;
            min = min.min(x);
            max = max.max(x);
        }
        if count == 0 {
            return None;
        }
        let mean = sum / count as f64;
        let var = (sum2 / count as f64 - mean * mean).max(0.0);
        Some(SummaryStats {
            count,
            mean,
            sd: var.sqrt(),
            min,
            max,
        })
    }
}

/// The standard quantile grid used in the repro harness's CDF printouts.
pub const CDF_GRID: [f64; 13] = [
    0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.995, 0.999, 0.9999, 1.0,
];

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantiles_of_known_set() {
        let c = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.quantile(0.5), Some(3.0));
        assert_eq!(c.quantile(1.0), Some(5.0));
        assert_eq!(c.quantile(0.25), Some(2.0));
        assert_eq!(c.median(), Some(3.0));
    }

    #[test]
    fn fraction_below_handles_ties() {
        let c = Cdf::from_samples(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(c.fraction_below(2.0), 0.25);
        assert_eq!(c.fraction_at_or_below(2.0), 0.75);
        assert_eq!(c.fraction_below(10.0), 1.0);
        assert_eq!(c.fraction_below(0.0), 0.0);
    }

    #[test]
    fn non_finite_samples_dropped() {
        let c = Cdf::from_samples(vec![f64::NAN, 1.0, f64::INFINITY, 2.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.max(), Some(2.0));
    }

    #[test]
    fn empty_cdf() {
        let c = Cdf::from_samples(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.fraction_below(1.0), 0.0);
    }

    #[test]
    fn summary_stats_known() {
        let s = SummaryStats::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.sd - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.count, 8);
        assert!(SummaryStats::of(std::iter::empty()).is_none());
    }

    proptest! {
        /// Quantile is monotone in p and bounded by min/max.
        #[test]
        fn prop_quantile_monotone(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let c = Cdf::from_samples(samples);
            let mut last = f64::NEG_INFINITY;
            for i in 0..=20 {
                let q = c.quantile(i as f64 / 20.0).unwrap();
                prop_assert!(q >= last);
                prop_assert!(q >= c.min().unwrap() - 1e-9);
                prop_assert!(q <= c.max().unwrap() + 1e-9);
                last = q;
            }
        }

        /// fraction_below is a valid CDF: monotone, in [0,1].
        #[test]
        fn prop_fraction_below_monotone(samples in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let c = Cdf::from_samples(samples);
            let mut last = 0.0;
            for i in -10..=10 {
                let f = c.fraction_below(i as f64 * 100.0);
                prop_assert!((0.0..=1.0).contains(&f));
                prop_assert!(f >= last);
                last = f;
            }
        }
    }
}
