//! The multiplexed many-call engine: one worker advances N concurrent
//! sessions through **one shared calendar queue**, **one shared
//! [`SessionArena`]**, and (in live mode) **one session-keyed
//! [`PipelinePool`]** — the operator deployment shape, where a thread
//! watches a fleet of interleaved calls instead of running one call to
//! completion at a time.
//!
//! # Scheduling
//!
//! All co-scheduled sessions share the engine tick, and the driver steps
//! them on one global tick lattice. Each global tick runs three sweeps over
//! the active set, preserving every session's solo phase order:
//!
//! 1. [`SessionState::begin_tick`] for every active session (endpoints
//!    emit, access network advances); route events land in the shared
//!    [`SharedRouteQueue`] tagged with the session's spec index and shifted
//!    to global time by its start offset.
//! 2. One global drain of the shared queue in `(time, session, seq)` order;
//!    each popped event is dispatched to its session at session-local time.
//!    Route handlers never schedule further route events, so the drain is
//!    closed within the tick — and restricted to one session it replays
//!    exactly the `(time, seq)` pop order of a private queue.
//! 3. [`SessionState::end_tick`] for every active session; finished
//!    sessions (duration reached, or live early-exit) are finalised, their
//!    slot immediately refilled from the work queue with a session whose
//!    clock starts at the *current* global tick — so long sweeps run with
//!    staggered start offsets as a matter of course.
//!
//! # Determinism
//!
//! Sessions never interact: all randomness is per-session (derived from the
//! spec seed), per-session sub-state is leased from the arena and cleared
//! at lease time, and the shared queue's tag keeps per-session event order
//! identical to a private queue's. Per-session outputs are therefore
//! **byte-identical** to solo runs at any multiplex width and any
//! interleaving of start offsets — `tests/multiplex_determinism.rs`
//! enforces this the same way the PR 3/4 contracts are enforced.
//!
//! Stale events are harmless by construction: a session that ends (or
//! aborts) may leave already-scheduled route events in the shared queue;
//! their tag no longer matches an active session when they pop, so they are
//! dropped — exactly as the solo driver's `queue.clear()` would have
//! discarded them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use domino_core::{Analysis, ChainStats, Domino, StreamingAnalyzer};
use domino_live::{ChaosState, ChaosTap, LiveStats, PipelinePool};
use domino_obs::{Counter, FGauge, Gauge, Recorder, SpanId};
use scenarios::{SessionArena, SessionSpec, SessionState, SharedRouteQueue};
use simcore::{alloc_count, SimDuration, SimTime};
use telemetry::{LiveTap, NullTap, TraceBundle};

use crate::{
    live_config_for, record_chaos_obs, record_live_obs, AnalysisMode, SessionOutcome, SweepOptions,
};

/// How each sweep worker schedules the sessions it claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One session at a time per worker, run to completion (the classic
    /// PR 1–4 driver).
    #[default]
    PerWorker,
    /// Up to `width` sessions interleaved per worker through one shared
    /// calendar queue, arena, and pipeline pool (see the
    /// [module docs](crate::multiplex)). `width` ≤ 1 behaves like
    /// [`ExecutionMode::PerWorker`].
    Multiplexed {
        /// Concurrent sessions per worker.
        width: usize,
    },
}

/// One interleaved session in flight.
struct Active {
    /// Global spec index — the shared-queue tag and pipeline-pool key.
    index: usize,
    state: SessionState,
    /// Global time at which this session's local clock started (a multiple
    /// of the group tick: sessions start on the lattice).
    offset: SimDuration,
}

/// Everything one multiplexing worker owns: the shared arena (scratch plus
/// free-listed per-session sub-state), the shared tagged route-event queue,
/// and the analyzer or pipeline pool for the configured [`AnalysisMode`].
///
/// `run_sweep` spawns one per worker thread under
/// [`ExecutionMode::Multiplexed`]; embedders (and the throughput
/// microbench) that already own a thread can drive one directly through
/// [`MuxWorker::run_batch`], reusing its warm arena/queue/pool across
/// batches.
pub struct MuxWorker {
    arena: SessionArena,
    shared: SharedRouteQueue,
    pool: Option<PipelinePool>,
    analyzer: Option<StreamingAnalyzer>,
    /// Per-session telemetry-chaos state for in-flight degraded cells,
    /// keyed like the pipeline pool. Sessions with no chaos plan have no
    /// entry and their taps bypass the wrapper entirely.
    chaos: HashMap<u64, ChaosState>,
}

impl MuxWorker {
    /// Creates the worker state `opts.analysis` needs under `domino`'s
    /// configuration.
    pub fn new(domino: &Domino, opts: &SweepOptions) -> Self {
        let analyzer = match opts.analysis {
            AnalysisMode::Streaming => {
                StreamingAnalyzer::new(domino.graph().clone(), domino.config().clone()).ok()
            }
            _ => None,
        };
        let pool = match opts.analysis {
            AnalysisMode::Live => {
                PipelinePool::new(domino.graph().clone(), domino.config().clone(), opts.live).ok()
            }
            _ => None,
        };
        let mut arena = SessionArena::new();
        *arena.recorder_mut() = Recorder::new(opts.obs);
        MuxWorker {
            arena,
            shared: SharedRouteQueue::new(),
            pool,
            analyzer,
            chaos: HashMap::new(),
        }
    }

    /// The worker's metrics recorder (disabled unless
    /// [`SweepOptions::obs`] enabled it at construction).
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        self.arena.recorder_mut()
    }

    /// Drives every spec through this worker at up to `width` in flight
    /// (no threads spawned; claims indices in order) and returns the
    /// outcomes in spec order. Arena, shared queue, and pipeline pool stay
    /// warm across calls.
    pub fn run_batch(
        &mut self,
        specs: &[SessionSpec],
        width: usize,
        domino: &Domino,
        opts: &SweepOptions,
    ) -> Vec<SessionOutcome> {
        let mut next = 0usize;
        let mut slots: Vec<Option<SessionOutcome>> = Vec::new();
        slots.resize_with(specs.len(), || None);
        let mut claim = || {
            let i = next;
            next += 1;
            (i < specs.len()).then_some(i)
        };
        let mut complete = |o: SessionOutcome| {
            let index = o.index;
            slots[index] = Some(o);
        };
        self.run(width, specs, domino, opts, &mut claim, &mut complete, None);
        slots
            .into_iter()
            .map(|s| s.expect("every spec completed"))
            .collect()
    }

    /// Runs sessions claimed from `claim` at up to `width` in flight,
    /// delivering each finished [`SessionOutcome`] to `complete` (in
    /// completion order; the caller slots them by index).
    /// `footprint_peak`, when given, receives a `fetch_max` of the arena
    /// footprint after every completed session (the sweep's shared
    /// high-water the progress callback reports).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run(
        &mut self,
        width: usize,
        specs: &[SessionSpec],
        domino: &Domino,
        opts: &SweepOptions,
        claim: &mut dyn FnMut() -> Option<usize>,
        complete: &mut dyn FnMut(SessionOutcome),
        footprint_peak: Option<&AtomicU64>,
    ) {
        let width = width.max(1);
        let live = opts.analysis == AnalysisMode::Live && self.pool.is_some();
        self.shared.clear();
        self.chaos.clear();
        let obs_on = self.arena.recorder_mut().is_on();
        // Batch-level baselines: the recorder outlives run() calls (warm
        // worker reuse), so allocator and pool rollups record deltas.
        let (allocs_before, ticks_before) = if obs_on {
            (
                alloc_count::allocations(),
                self.arena.recorder_mut().counter(Counter::EngineTicks),
            )
        } else {
            (0, 0)
        };
        let pool_before = self.pool.as_ref().map(|p| p.stats()).unwrap_or_default();
        let mut active: Vec<Active> = Vec::with_capacity(width);
        let mut null = NullTap;
        // Global driver clock and the group tick, fixed by the first
        // claimed spec. A spec with a different engine tick cannot share
        // the lattice; it runs solo (to completion) on the same arena and
        // pool instead of being interleaved.
        let mut global = SimTime::ZERO;
        let mut tick: Option<SimDuration> = None;

        loop {
            if active.is_empty() {
                // No session pins the lattice: let the next claim re-fix
                // the group tick, so one atypical-tick spec cannot disable
                // interleaving for the rest of the sweep.
                tick = None;
            }
            // Refill free slots; new sessions start at the current tick.
            while active.len() < width {
                let Some(index) = claim() else { break };
                let spec = &specs[index];
                match tick {
                    None => tick = Some(spec.cfg.tick),
                    Some(t) if t != spec.cfg.tick => {
                        complete(self.run_solo(spec, index, domino, opts, live));
                        continue;
                    }
                    Some(_) => {}
                }
                if live {
                    let pipe = self
                        .pool
                        .as_mut()
                        .expect("live implies pool")
                        .checkout(index as u64);
                    pipe.set_live_config(live_config_for(spec, opts));
                    if let Some(plan) = &spec.chaos {
                        let state = ChaosState::new(plan);
                        if !state.is_noop() {
                            self.chaos.insert(index as u64, state);
                        }
                    }
                }
                let state = spec.start_in(live, &mut self.arena);
                if state.is_done() {
                    // Degenerate spec (duration shorter than its tick): no
                    // tick may be begun — finalise straight away, exactly
                    // like the solo driver's `while !is_done()` guard.
                    let mut chaos_state = self.chaos.remove(&(index as u64));
                    let MuxWorker {
                        arena, pool: pl, ..
                    } = self;
                    complete(finalize(
                        Active {
                            index,
                            state,
                            offset: SimDuration::ZERO,
                        },
                        spec.label.clone(),
                        arena,
                        pl,
                        &mut self.analyzer,
                        domino,
                        opts,
                        live,
                        chaos_state.as_mut(),
                    ));
                    if let Some(st) = &chaos_state {
                        record_chaos_obs(self.arena.recorder_mut(), &st.log);
                    }
                    continue;
                }
                active.push(Active {
                    index,
                    state,
                    offset: global - SimTime::ZERO,
                });
            }
            if active.is_empty() {
                break;
            }
            self.arena
                .recorder_mut()
                .gauge_max(Gauge::MuxInFlightPeak, active.len() as u64);
            let MuxWorker {
                arena,
                shared,
                pool,
                chaos,
                ..
            } = self;
            global += tick.expect("tick fixed by the first claimed spec");

            // Phase 1–2 for every active session, in slot order.
            for s in active.iter_mut() {
                let mut sink = shared.sink(s.index as u64, s.offset);
                with_tap(live, pool, chaos, &mut null, s.index as u64, |tap| {
                    s.state.begin_tick(tap, arena.scratch_mut(), &mut sink)
                });
            }

            // Phase 3: one global drain in (time, session, seq) order.
            let span = arena.recorder_mut().span_enter(SpanId::RouteDrain);
            let (mut routed, mut stale) = (0u64, 0u64);
            while let Some((at, tag, ev)) = shared.pop_due(global) {
                let Some(s) = active.iter_mut().find(|s| s.index as u64 == tag) else {
                    stale += 1;
                    continue; // stale event of a finished session
                };
                let local = at - s.offset;
                with_tap(live, pool, chaos, &mut null, tag, |tap| {
                    s.state.route_event(local, ev, tap)
                });
                routed += 1;
            }
            let rec = arena.recorder_mut();
            rec.span_exit(SpanId::RouteDrain, span);
            // Dispatched events are per-session and width-invariant (`Sim`);
            // stale drops exist only because sessions share the queue, so
            // their count varies with width (`Runtime`).
            rec.add(Counter::EngineRouteEvents, routed);
            rec.add(Counter::MuxStaleDrops, stale);

            // Phase 4–5; finalise finished sessions and free their slots.
            let mut i = 0;
            while i < active.len() {
                let s = &mut active[i];
                let done = with_tap(live, pool, chaos, &mut null, s.index as u64, |tap| {
                    s.state.end_tick(tap, arena.scratch_mut())
                });
                if done {
                    let s = active.swap_remove(i);
                    let label = specs[s.index].label.clone();
                    let mut chaos_state = chaos.remove(&(s.index as u64));
                    complete(finalize(
                        s,
                        label,
                        arena,
                        pool,
                        &mut self.analyzer,
                        domino,
                        opts,
                        live,
                        chaos_state.as_mut(),
                    ));
                    if let Some(st) = &chaos_state {
                        debug_assert!(st.log.reconciled(), "chaos log must balance");
                        record_chaos_obs(arena.recorder_mut(), &st.log);
                    }
                    if obs_on {
                        let fp = arena.footprint() as u64;
                        arena.recorder_mut().gauge_max(Gauge::ArenaFootprint, fp);
                        if let Some(a) = footprint_peak {
                            a.fetch_max(fp, Ordering::Relaxed);
                        }
                    }
                } else {
                    i += 1;
                }
            }
        }

        if obs_on {
            let allocs = alloc_count::allocations() - allocs_before;
            let pool_now = self.pool.as_ref().map(|p| p.stats());
            let rec = self.arena.recorder_mut();
            let ticks = rec.counter(Counter::EngineTicks) - ticks_before;
            rec.add(Counter::ProcAllocs, allocs);
            if ticks > 0 {
                // One batch-wide figure over all engine ticks: interleaved
                // sessions share the allocator, so a per-session
                // attribution does not exist.
                rec.fgauge_max(FGauge::AllocsPerTickPeak, allocs as f64 / ticks as f64);
            }
            if let Some(st) = pool_now {
                rec.add(
                    Counter::PoolCreated,
                    (st.created - pool_before.created) as u64,
                );
                rec.add(Counter::PoolReused, (st.reused - pool_before.reused) as u64);
                rec.add(
                    Counter::PoolEvicted,
                    (st.evicted - pool_before.evicted) as u64,
                );
            }
        }
    }

    /// The non-interleaved escape hatch for a spec whose engine tick does
    /// not match the group lattice: run it to completion through the
    /// arena's *private* route-event queue — exactly the per-worker
    /// driver's path (`SessionSpec::run_with_tap_in`) — so the
    /// worker-shared queue, which may hold other active sessions' future
    /// events, is never popped on this session's clock.
    fn run_solo(
        &mut self,
        spec: &SessionSpec,
        index: usize,
        domino: &Domino,
        opts: &SweepOptions,
        live: bool,
    ) -> SessionOutcome {
        let MuxWorker {
            arena,
            pool,
            analyzer,
            ..
        } = self;
        let (bundle, analysis, live_stats) = if live {
            let pool = pool.as_mut().expect("live implies pool");
            let pipe = pool.checkout(index as u64);
            pipe.set_live_config(live_config_for(spec, opts));
            let bundle = match &spec.chaos {
                Some(plan) => {
                    let mut state = ChaosState::new(plan);
                    let bundle = if state.is_noop() {
                        spec.run_with_tap_in(pipe, arena)
                    } else {
                        let mut tap = ChaosTap::new(&mut state, pipe);
                        spec.run_with_tap_in(&mut tap, arena)
                    };
                    debug_assert!(state.log.reconciled(), "chaos log must balance");
                    record_chaos_obs(arena.recorder_mut(), &state.log);
                    bundle
                }
                None => spec.run_with_tap_in(pipe, arena),
            };
            let analysis = pool
                .get_mut(index as u64)
                .expect("leased above")
                .take_analysis(bundle.meta.duration);
            record_live_obs(
                arena.recorder_mut(),
                pool.get_mut(index as u64).expect("leased above"),
            );
            let stats = pool.release(index as u64);
            (bundle, Some(analysis), stats)
        } else {
            let bundle = spec.run_in(arena);
            let analysis = post_hoc_analysis(&bundle, analyzer, domino, opts);
            (bundle, analysis, None)
        };
        outcome_from(
            index,
            spec.label.clone(),
            bundle,
            analysis,
            live_stats,
            arena,
            domino,
            opts,
        )
    }
}

/// Resolves the tap a session's step methods receive — its leased pipeline
/// in live mode, the worker's shared null tap otherwise — wraps it in the
/// session's [`ChaosTap`] when a chaos plan is in flight, and hands it to
/// `f`. The wrapper is built per call (it borrows both the per-session
/// chaos state and the pipeline), which is free: it is two reborrows.
fn with_tap<R>(
    live: bool,
    pool: &mut Option<PipelinePool>,
    chaos: &mut HashMap<u64, ChaosState>,
    null: &mut NullTap,
    session: u64,
    f: impl FnOnce(&mut dyn LiveTap) -> R,
) -> R {
    let inner: &mut dyn LiveTap = if live {
        pool.as_mut()
            .expect("live implies pool")
            .get_mut(session)
            .expect("leased at claim")
    } else {
        null
    };
    match chaos.get_mut(&session) {
        Some(state) => f(&mut ChaosTap::new(state, inner)),
        None => f(inner),
    }
}

/// The post-hoc analysis pass for non-live modes — mirrors the per-worker
/// driver: streaming when supported, batch for `AnalysisMode::Batch`,
/// streaming-unsupported configs, and the live fallback (pool construction
/// rejected the configuration).
fn post_hoc_analysis(
    bundle: &TraceBundle,
    analyzer: &mut Option<StreamingAnalyzer>,
    domino: &Domino,
    opts: &SweepOptions,
) -> Option<Analysis> {
    match (opts.analysis, analyzer) {
        (AnalysisMode::None, _) => None,
        (AnalysisMode::Streaming, Some(a)) => Some(a.analyze(bundle)),
        _ => Some(domino.analyze(bundle)),
    }
}

/// Finishes one session and builds its [`SessionOutcome`] — the multiplexed
/// twin of `WorkerScratch::run_session`'s post-processing: live sessions
/// flush their pipeline via `on_finish`, take the accumulated analysis, and
/// release the pipeline back to the pool (warm, ready for the next call);
/// other modes run the configured post-hoc pass over the finished bundle.
#[allow(clippy::too_many_arguments)]
fn finalize(
    s: Active,
    label: String,
    arena: &mut SessionArena,
    pool: &mut Option<PipelinePool>,
    analyzer: &mut Option<StreamingAnalyzer>,
    domino: &Domino,
    opts: &SweepOptions,
    live: bool,
    chaos: Option<&mut ChaosState>,
) -> SessionOutcome {
    let index = s.index;
    let (bundle, analysis, live_stats) = if live {
        let pool = pool.as_mut().expect("live implies pool");
        let tap = pool.get_mut(index as u64).expect("leased at claim");
        // `finish` drives the tap's `on_finish`; with chaos in flight it
        // must route through the wrapper so delayed records still in the
        // chaos stash flush into the pipeline before the final windows.
        let bundle = match chaos {
            Some(state) => s.state.finish(&mut ChaosTap::new(state, tap), arena),
            None => s.state.finish(tap, arena),
        };
        let analysis = pool
            .get_mut(index as u64)
            .expect("leased at claim")
            .take_analysis(bundle.meta.duration);
        record_live_obs(
            arena.recorder_mut(),
            pool.get_mut(index as u64).expect("leased at claim"),
        );
        let stats = pool.release(index as u64);
        (bundle, Some(analysis), stats)
    } else {
        let bundle = s.state.finish(&mut NullTap, arena);
        let analysis = post_hoc_analysis(&bundle, analyzer, domino, opts);
        (bundle, analysis, None)
    };
    outcome_from(
        index, label, bundle, analysis, live_stats, arena, domino, opts,
    )
}

/// Assembles the outcome, retaining or recycling the bundle per `opts`.
#[allow(clippy::too_many_arguments)]
fn outcome_from(
    index: usize,
    label: String,
    bundle: TraceBundle,
    analysis: Option<Analysis>,
    live_stats: Option<LiveStats>,
    arena: &mut SessionArena,
    domino: &Domino,
    opts: &SweepOptions,
) -> SessionOutcome {
    arena.recorder_mut().add(Counter::EngineSessions, 1);
    let stats = analysis
        .as_ref()
        .map(|a| ChainStats::compute(domino.graph(), a));
    let meta = bundle.meta.clone();
    let bundle = if opts.keep_bundles {
        Some(bundle)
    } else {
        arena.recycle(bundle);
        None
    };
    SessionOutcome {
        index,
        label,
        meta,
        bundle,
        analysis: if opts.keep_analyses { analysis } else { None },
        stats,
        live: live_stats,
    }
}
