//! # domino-sweep — the parallel multi-session sweep engine
//!
//! Fans a grid of [`SessionSpec`]s across OS threads, runs each session's
//! simulator, analyses the resulting trace with Domino (streaming fast path
//! when the configuration supports it, or inline *during* the simulation
//! with [`AnalysisMode::Live`]), and folds everything into a deterministic
//! [`SweepReport`]. [`run_sweep_with_progress`] reports sessions/sec and
//! ETA while operator-scale grids drain.
//!
//! Determinism is the design constraint: sessions are claimed from a shared
//! atomic work index (so threads never idle while work remains), each session
//! derives all randomness from its own spec seed, and aggregation happens
//! *after* the join in spec order — so the report is byte-identical whether
//! the sweep ran on 1 thread or 64. `tests/sweep_determinism.rs` enforces
//! this.
//!
//! This crate is the shared driver for the benchmark harness's
//! `longitudinal`, `domino_eval`, and `ablations` experiments (previously
//! hand-rolled sequential loops), and the scaling substrate the ROADMAP's
//! operator-scale ambitions build on: a sweep over seeds × scenarios ×
//! durations is exactly the "many sessions, one report" shape a fleet-wide
//! diagnoser runs continuously.
//!
//! Past one machine, the [`shard`] module splits a grid into contiguous
//! spec-index ranges ([`ShardPlan`]), runs each range anywhere
//! ([`run_shard`]), serialises the results as versioned plain text
//! ([`ShardReport`]), and folds the shard files back together
//! ([`merge_shards`]) into a report byte-identical to a single-machine
//! [`run_sweep`] — at any shard count and any per-shard thread count.

pub mod chaos;
pub mod coordinator;
pub mod multiplex;
pub mod shard;
pub mod transport;
pub mod worker;

pub use chaos::{Fault, FaultLog, FaultPlan, InProcFleet};
pub use coordinator::{
    run_coordinator, CoordinatorConfig, CoordinatorError, CoordinatorProgress, CoordinatorRun,
    CoordinatorStats,
};
pub use multiplex::{ExecutionMode, MuxWorker};
pub use shard::{
    merge_shards, run_shard, run_shard_with_metrics, LiveTotals, MergeError, Shard, ShardPlan,
    ShardReport, SpecOutcome,
};
pub use transport::{
    DispatchSpec, Frame, FrameKind, TcpLink, TcpTransport, Transport, TransportEvent, WorkerId,
};
pub use worker::{run_worker, SweepWorker, WorkerExit, WorkerFaults};

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use domino_core::{Analysis, ChainStats, Domino, StreamingAnalyzer};
use domino_live::{ChaosState, ChaosTap, LivePipeline, LiveStats, TapFaultLog};
use domino_obs::{Counter, FGauge, Gauge, HistId, Recorder};
use scenarios::{SessionArena, SessionSpec};
use simcore::alloc_count;
use telemetry::{SessionMeta, TraceBundle};

pub use domino_live::{EarlyExit, LiveConfig};
pub use domino_obs::{MetricsSnapshot, ObsConfig};
pub use telemetry::{Lateness, TapChaosSpec, TapFault, TapStream};

/// What each sweep worker does with a finished session's bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisMode {
    /// Keep only the bundle; no Domino pass.
    None,
    /// Batch sliding-window analysis ([`Domino::analyze`]).
    Batch,
    /// Incremental analysis ([`StreamingAnalyzer`]), falling back to batch
    /// for configurations outside the streaming alignment contract.
    #[default]
    Streaming,
    /// Online analysis *during* the simulation: each session runs with a
    /// [`LivePipeline`] tapped into the engine ([`SessionSpec::run_with_tap`]),
    /// configured by [`SweepOptions::live`]. With [`EarlyExit::Never`] and a
    /// sufficient lateness bound the aggregate is identical to the other
    /// modes; with an early-exit policy, sessions abort once their verdict
    /// is in, trading trace completeness for simulation time. Falls back to
    /// batch for configurations outside the streaming alignment contract.
    Live,
}

/// Sweep-wide options.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads; 0 means all available cores.
    pub threads: usize,
    /// How each worker schedules its claimed sessions: one at a time
    /// ([`ExecutionMode::PerWorker`]) or up to `width` interleaved through
    /// one shared calendar queue, arena, and pipeline pool
    /// ([`ExecutionMode::Multiplexed`]). Per-session outputs (and thus the
    /// whole report) are byte-identical across modes and widths.
    pub execution: ExecutionMode,
    /// Per-session analysis mode.
    pub analysis: AnalysisMode,
    /// Live-stage configuration (lateness bound and early-exit policy),
    /// used by [`AnalysisMode::Live`] only.
    pub live: LiveConfig,
    /// Retain each session's [`TraceBundle`] in the outcome. Sweeps that
    /// only need aggregates should leave this off: bundles dominate memory.
    pub keep_bundles: bool,
    /// Retain each session's full per-window [`Analysis`].
    pub keep_analyses: bool,
    /// Observability recorder configuration. Disabled by default — every
    /// record site is then a single predicted branch. When enabled, each
    /// worker carries a [`Recorder`] in its arena and the merged
    /// [`MetricsSnapshot`] lands in [`SweepReport::metrics`]. Recording
    /// never affects report bytes (`tests/obs_invisibility.rs`).
    pub obs: ObsConfig,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 0,
            execution: ExecutionMode::PerWorker,
            analysis: AnalysisMode::Streaming,
            live: LiveConfig::default(),
            keep_bundles: false,
            keep_analyses: false,
            obs: ObsConfig::default(),
        }
    }
}

impl SweepOptions {
    /// Options for sweeps that need the raw bundles (figure experiments).
    pub fn bundles_only() -> Self {
        SweepOptions {
            analysis: AnalysisMode::None,
            keep_bundles: true,
            ..Default::default()
        }
    }

    /// Options for sweeps that need bundles *and* analyses.
    pub fn full() -> Self {
        SweepOptions {
            keep_bundles: true,
            keep_analyses: true,
            ..Default::default()
        }
    }

    /// Sets the worker-thread count (0 = all available cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the per-worker execution mode (sequential or multiplexed).
    pub fn mode(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }

    /// Sets the per-session analysis mode.
    pub fn analysis(mut self, analysis: AnalysisMode) -> Self {
        self.analysis = analysis;
        self
    }

    /// Sets the live-stage configuration used by [`AnalysisMode::Live`].
    pub fn live(mut self, live: LiveConfig) -> Self {
        self.live = live;
        self
    }

    /// Sets the observability recorder configuration.
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Retains each session's [`TraceBundle`] in its outcome.
    pub fn keep_bundles(mut self, keep: bool) -> Self {
        self.keep_bundles = keep;
        self
    }

    /// Retains each session's full per-window [`Analysis`].
    pub fn keep_analyses(mut self, keep: bool) -> Self {
        self.keep_analyses = keep;
        self
    }

    fn resolved_threads(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        let n = if self.threads == 0 { hw } else { self.threads };
        n.clamp(1, jobs.max(1))
    }
}

/// One session's results.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Position in the input spec list.
    pub index: usize,
    /// Spec label.
    pub label: String,
    /// Session metadata (always retained; cheap).
    pub meta: SessionMeta,
    /// The raw bundle, if `keep_bundles` was set.
    pub bundle: Option<TraceBundle>,
    /// The per-window analysis, if `keep_analyses` was set.
    pub analysis: Option<Analysis>,
    /// Chain statistics of the analysis (present unless mode was `None`).
    pub stats: Option<ChainStats>,
    /// Live-pipeline counters (late drops, peak retained records, early
    /// exit), present when the session ran under [`AnalysisMode::Live`].
    pub live: Option<LiveStats>,
}

/// A progress snapshot delivered to the [`run_sweep_with_progress`]
/// callback after every completed session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepProgress {
    /// Sessions finished so far (including this one).
    pub completed: usize,
    /// Sessions claimed and currently executing. Per-worker execution holds
    /// this at (up to) the thread count; multiplexed execution reports
    /// every interleaved in-flight session individually, which is why it is
    /// surfaced separately from the completion rate — a wide batch of
    /// co-started sessions finishing together moves `completed` in a burst
    /// without meaning the steady-state rate changed.
    pub in_flight: usize,
    /// Total sessions in the sweep.
    pub total: usize,
    /// Completion throughput over a sliding window of the most recent
    /// completions (up to [`RATE_WINDOW`]), falling back to the lifetime
    /// average while the window fills. A long sweep whose early sessions
    /// were slow (cold caches) or fast (short specs first) therefore
    /// reports the *current* rate, and the ETA stays stable instead of
    /// drifting with the lifetime mean.
    pub sessions_per_sec: f64,
    /// Estimated seconds until the sweep drains, extrapolated from the
    /// windowed throughput (`f64::INFINITY` until one session completes).
    pub eta_secs: f64,
    /// High-water mark of any worker arena's retained-storage footprint in
    /// elements ([`SessionArena::footprint`]), sampled at session completion.
    /// A fleet operator watches this next to `in_flight`: it is the memory
    /// the sweep will *keep* using at this width.
    pub arena_footprint_peak: u64,
}

/// Completions the windowed sessions/sec estimate looks back over.
pub const RATE_WINDOW: usize = 32;

/// Sliding window of completion instants behind the progress rate.
struct RateWindow {
    started: Instant,
    recent: VecDeque<Instant>,
}

impl RateWindow {
    fn new(started: Instant) -> Self {
        RateWindow {
            started,
            recent: VecDeque::with_capacity(RATE_WINDOW + 1),
        }
    }

    /// Records a completion at `now` and returns the windowed rate.
    ///
    /// The rate counts completions *strictly after* the window's first
    /// instant over the window span. Counting both endpoints'
    /// contributions (the old `(len - 1) / span`) overstates the rate when
    /// completions arrive in bursts — a multiplexed worker finishing a
    /// co-started batch at one instant would double the reported rate and
    /// halve the ETA until the batch left the window. With same-instant
    /// completions collapsed onto the window's start, a batch of K counts
    /// as one arrival event per span unit, so the ETA stays put.
    fn on_completion(&mut self, now: Instant, completed: usize) -> f64 {
        self.recent.push_back(now);
        while self.recent.len() > RATE_WINDOW {
            self.recent.pop_front();
        }
        let first = *self.recent.front().expect("just pushed");
        let window_secs = now.duration_since(first).as_secs_f64();
        let after_first = self.recent.iter().filter(|&&t| t > first).count();
        if after_first >= 1 && window_secs > 0.0 {
            after_first as f64 / window_secs
        } else {
            // Window not yet meaningful: lifetime average.
            let elapsed = now.duration_since(self.started).as_secs_f64();
            if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            }
        }
    }
}

/// Aggregated results of one sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-session outcomes, in spec order.
    pub outcomes: Vec<SessionOutcome>,
    /// All sessions' chain statistics merged in spec order.
    pub aggregate: ChainStats,
    /// Per-worker metric snapshots merged in worker order, present when
    /// [`SweepOptions::obs`] was enabled. The `Sim` section is
    /// byte-identical at any thread count, execution mode, or multiplex
    /// width ([`MetricsSnapshot::encode_sim`]).
    pub metrics: Option<MetricsSnapshot>,
}

impl SweepReport {
    /// Merged chain statistics of the outcomes selected by `pred`, folded in
    /// spec order (deterministic regardless of execution interleaving).
    pub fn aggregate_where(&self, pred: impl Fn(&SessionOutcome) -> bool) -> ChainStats {
        let mut agg = ChainStats::default();
        for o in self.outcomes.iter().filter(|o| pred(o)) {
            if let Some(s) = &o.stats {
                agg.merge(s);
            }
        }
        agg
    }
}

/// Runs every spec, fanning sessions across `opts.threads` OS threads, and
/// folds the results in spec order.
pub fn run_sweep(specs: &[SessionSpec], domino: &Domino, opts: &SweepOptions) -> SweepReport {
    run_sweep_with_progress(specs, domino, opts, &|_| {})
}

/// [`run_sweep`] with a progress callback, invoked from worker threads
/// after every completed session (so it must be `Sync`; keep it cheap —
/// e.g. a line to stderr or an atomic store a UI thread reads).
pub fn run_sweep_with_progress(
    specs: &[SessionSpec],
    domino: &Domino,
    opts: &SweepOptions,
    progress: &(dyn Fn(SweepProgress) + Sync),
) -> SweepReport {
    let threads = opts.resolved_threads(specs.len());
    let mut slots: Vec<Option<SessionOutcome>> = Vec::new();
    slots.resize_with(specs.len(), || None);
    let slots = Mutex::new(slots);
    let next = AtomicUsize::new(0);
    let started = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let rate = Mutex::new(RateWindow::new(Instant::now()));
    let footprint_peak = AtomicU64::new(0);
    let mut snaps: Vec<Option<MetricsSnapshot>> = Vec::new();
    snaps.resize_with(threads, || None);
    let snaps = Mutex::new(snaps);

    // Shared by both execution modes: claim the next spec index (tracking
    // the in-flight count) and record a finished outcome + progress snapshot.
    let claim = || {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i < specs.len() {
            started.fetch_add(1, Ordering::Relaxed);
            Some(i)
        } else {
            None
        }
    };
    let complete = |outcome: SessionOutcome| {
        let index = outcome.index;
        slots.lock().expect("sweep worker panicked")[index] = Some(outcome);
        let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
        let sessions_per_sec = rate
            .lock()
            .expect("sweep worker panicked")
            .on_completion(Instant::now(), completed);
        progress(SweepProgress {
            completed,
            in_flight: started.load(Ordering::Relaxed).saturating_sub(completed),
            total: specs.len(),
            sessions_per_sec,
            eta_secs: if sessions_per_sec > 0.0 {
                (specs.len() - completed) as f64 / sessions_per_sec
            } else {
                f64::INFINITY
            },
            arena_footprint_peak: footprint_peak.load(Ordering::Relaxed),
        });
    };

    std::thread::scope(|scope| {
        for w in 0..threads {
            let (claim, complete) = (&claim, &complete);
            let (snaps, footprint_peak) = (&snaps, &footprint_peak);
            scope.spawn(move || {
                let wall = Instant::now();
                match opts.execution {
                    ExecutionMode::Multiplexed { width } if width > 1 => {
                        // N sessions interleaved through one shared calendar
                        // queue, arena, and pipeline pool per worker.
                        let mut worker = multiplex::MuxWorker::new(domino, opts);
                        worker.run(
                            width,
                            specs,
                            domino,
                            opts,
                            &mut { claim },
                            &mut { complete },
                            Some(footprint_peak),
                        );
                        finish_worker(worker.recorder_mut(), wall, w, snaps);
                    }
                    _ => {
                        // One scratch per worker: the session arena (event
                        // queue, in-flight map, recycled bundle buffers) and
                        // the analyzer/pipeline state are reused across every
                        // session the worker claims.
                        let mut scratch = WorkerScratch::new(domino, opts);
                        while let Some(i) = claim() {
                            let outcome = scratch.run_session(&specs[i], i, domino, opts);
                            footprint_peak.fetch_max(scratch.footprint() as u64, Ordering::Relaxed);
                            complete(outcome);
                        }
                        finish_worker(scratch.recorder_mut(), wall, w, snaps);
                    }
                }
            });
        }
    });

    let outcomes: Vec<SessionOutcome> = slots
        .into_inner()
        .expect("sweep worker panicked")
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect();

    // Worker snapshots fold in worker-index order. The `Sim` section is
    // order-free integer aggregation, so the fold order only matters for
    // reproducible `Runtime`-section bytes on one machine.
    let mut metrics: Option<MetricsSnapshot> = None;
    for snap in snaps
        .into_inner()
        .expect("sweep worker panicked")
        .into_iter()
        .flatten()
    {
        match &mut metrics {
            None => metrics = Some(snap),
            Some(m) => m.merge(&snap),
        }
    }

    let mut report = SweepReport {
        outcomes,
        aggregate: ChainStats::default(),
        metrics,
    };
    report.aggregate = report.aggregate_where(|_| true);
    report
}

/// Worker epilogue: stamps the worker's wall time and parks its snapshot in
/// the worker-indexed slot the post-join merge folds in order.
fn finish_worker(
    rec: &mut Recorder,
    wall: Instant,
    worker: usize,
    snaps: &Mutex<Vec<Option<MetricsSnapshot>>>,
) {
    rec.add(Counter::SweepWallNs, wall.elapsed().as_nanos() as u64);
    if let Some(snap) = rec.snapshot() {
        snaps.lock().expect("sweep worker panicked")[worker] = Some(snap);
    }
}

/// Folds one finished live session's pipeline counters and verdict
/// latencies into `rec`. Latency is *simulated* milliseconds past the
/// window's nominal due time (`window_start + window`): the lateness the
/// watermark actually charged, which the adaptive-lateness SLO work needs
/// measured per ROADMAP. All inputs are per-session and deterministic, so
/// every metric here is `Sim`-class.
pub(crate) fn record_live_obs(rec: &mut Recorder, p: &LivePipeline) {
    if !rec.is_on() {
        return;
    }
    let window = p.config().window;
    for v in p.verdicts() {
        let due = v.window_start + window;
        rec.observe(
            HistId::LiveVerdictLatencyMs,
            v.emitted_at.saturating_since(due).as_millis(),
        );
    }
    rec.add(Counter::LiveVerdicts, p.verdicts().len() as u64);
    let st = p.stats();
    rec.add(Counter::LiveRecordsSeen, st.records_seen as u64);
    rec.add(Counter::LiveLateDrops, st.late_records_dropped as u64);
    rec.add(Counter::LiveLateDeliveries, st.late_deliveries as u64);
    rec.add(Counter::LiveWindows, st.windows_emitted as u64);
    rec.add(Counter::LiveDegradedWindows, st.degraded_windows as u64);
    rec.gauge_max(Gauge::LivePeakRetained, st.peak_retained_records as u64);
    rec.absorb_hist(HistId::LiveDelayMs, p.delay_hist());
    rec.absorb_hist(HistId::LiveAdaptiveBoundMs, p.bound_hist());
    rec.absorb_hist(HistId::LiveDropRiskPct, p.risk_hist());
}

/// Folds one finished session's telemetry-chaos ground truth into `rec`:
/// every fault the [`ChaosTap`] injected becomes a `Sim`-class counter, so
/// an operator can reconcile injected faults against the live pipeline's
/// late-drop/coverage stats straight from the metrics artifact.
pub(crate) fn record_chaos_obs(rec: &mut Recorder, log: &TapFaultLog) {
    if !rec.is_on() {
        return;
    }
    rec.add(Counter::ChaosRecordsDropped, log.total_dropped());
    rec.add(Counter::ChaosBlackoutDrops, log.total_blackout_dropped());
    rec.add(Counter::ChaosRecordsDuplicated, log.total_duplicated());
    rec.add(Counter::ChaosRecordsDelayed, log.total_delayed());
    rec.add(Counter::ChaosRecordsSkewed, log.total_skewed());
}

/// The live configuration a spec actually runs under: the sweep-wide
/// default with the spec's [`SessionSpec::lateness`] override applied.
pub(crate) fn live_config_for(spec: &SessionSpec, opts: &SweepOptions) -> LiveConfig {
    LiveConfig {
        lateness: spec.lateness.unwrap_or(opts.live.lateness),
        early_exit: opts.live.early_exit,
    }
}

/// Everything one sweep worker reuses across the sessions it claims: the
/// [`SessionArena`] (event-queue storage, in-flight packet map, per-tick
/// scratch, recycled [`TraceBundle`] record buffers) plus the streaming
/// analyzer or live pipeline for the configured [`AnalysisMode`].
///
/// With a warm scratch, running a session performs O(1) large allocations
/// — the heap-peak regression test in `tests/live_equivalence.rs` asserts
/// the arena footprint stays flat from the second session on.
pub struct WorkerScratch {
    arena: SessionArena,
    analyzer: Option<StreamingAnalyzer>,
    pipeline: Option<LivePipeline>,
}

impl WorkerScratch {
    /// Creates the scratch a worker needs for `opts.analysis` under
    /// `domino`'s configuration.
    pub fn new(domino: &Domino, opts: &SweepOptions) -> Self {
        let analyzer = match opts.analysis {
            AnalysisMode::Streaming => {
                StreamingAnalyzer::new(domino.graph().clone(), domino.config().clone()).ok()
            }
            _ => None,
        };
        let pipeline = match opts.analysis {
            AnalysisMode::Live => {
                LivePipeline::new(domino.graph().clone(), domino.config().clone(), opts.live).ok()
            }
            _ => None,
        };
        let mut arena = SessionArena::new();
        *arena.recorder_mut() = Recorder::new(opts.obs);
        WorkerScratch {
            arena,
            analyzer,
            pipeline,
        }
    }

    /// The arena's retained-storage footprint (see
    /// [`SessionArena::footprint`]).
    pub fn footprint(&self) -> usize {
        self.arena.footprint()
    }

    /// The worker's metrics recorder (disabled unless
    /// [`SweepOptions::obs`] enabled it at construction).
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        self.arena.recorder_mut()
    }

    /// Runs one spec through simulate-then-analyze (or live inline
    /// analysis), reusing every buffer in this scratch. When
    /// `opts.keep_bundles` is off, the bundle's record buffers are recycled
    /// into the arena for the next session.
    pub fn run_session(
        &mut self,
        spec: &SessionSpec,
        index: usize,
        domino: &Domino,
        opts: &SweepOptions,
    ) -> SessionOutcome {
        let obs_on = self.arena.recorder_mut().is_on();
        let (allocs_before, ticks_before) = if obs_on {
            let rec = self.arena.recorder_mut();
            (
                alloc_count::allocations(),
                rec.counter(Counter::EngineTicks),
            )
        } else {
            (0, 0)
        };
        let (bundle, analysis, live) = match (opts.analysis, &mut self.pipeline) {
            (AnalysisMode::Live, Some(p)) => {
                // Analysis runs inline, during the simulation; the pipeline
                // may abort the session early per `opts.live.early_exit`.
                p.reset();
                p.set_live_config(live_config_for(spec, opts));
                let bundle = match &spec.chaos {
                    Some(chaos) => {
                        // Degraded-telemetry cell: the chaos tap sits
                        // between the engine and the pipeline, injecting
                        // the spec's seeded faults.
                        let mut state = ChaosState::new(chaos);
                        let bundle = if state.is_noop() {
                            spec.run_with_tap_in(p, &mut self.arena)
                        } else {
                            let mut tap = ChaosTap::new(&mut state, p);
                            spec.run_with_tap_in(&mut tap, &mut self.arena)
                        };
                        debug_assert!(state.log.reconciled(), "chaos log must balance");
                        record_chaos_obs(self.arena.recorder_mut(), &state.log);
                        bundle
                    }
                    None => spec.run_with_tap_in(p, &mut self.arena),
                };
                let analysis = p.take_analysis(bundle.meta.duration);
                (bundle, Some(analysis), Some(p.stats()))
            }
            (AnalysisMode::Live, None) => {
                // Configuration outside the streaming alignment contract:
                // fall back to a post-hoc batch pass.
                let bundle = spec.run_in(&mut self.arena);
                let analysis = domino.analyze(&bundle);
                (bundle, Some(analysis), None)
            }
            (mode, _) => {
                let bundle = spec.run_in(&mut self.arena);
                let analysis = match (mode, &mut self.analyzer) {
                    (AnalysisMode::None, _) => None,
                    (AnalysisMode::Streaming, Some(a)) => Some(a.analyze(&bundle)),
                    _ => Some(domino.analyze(&bundle)),
                };
                (bundle, analysis, None)
            }
        };
        if obs_on {
            if let (AnalysisMode::Live, Some(p)) = (opts.analysis, &self.pipeline) {
                // Verdicts are only cleared at the next `reset`, so the
                // just-finished session's are still readable here.
                record_live_obs(self.arena.recorder_mut(), p);
            }
            let allocs = alloc_count::allocations() - allocs_before;
            let footprint = self.arena.footprint();
            let rec = self.arena.recorder_mut();
            let ticks = rec.counter(Counter::EngineTicks) - ticks_before;
            rec.add(Counter::EngineSessions, 1);
            rec.add(Counter::ProcAllocs, allocs);
            if ticks > 0 {
                rec.fgauge_max(FGauge::AllocsPerTickPeak, allocs as f64 / ticks as f64);
            }
            rec.gauge_max(Gauge::ArenaFootprint, footprint as u64);
        }
        let stats = analysis
            .as_ref()
            .map(|a| ChainStats::compute(domino.graph(), a));
        let meta = bundle.meta.clone();
        let bundle = if opts.keep_bundles {
            Some(bundle)
        } else {
            self.arena.recycle(bundle);
            None
        };
        SessionOutcome {
            index,
            label: spec.label.clone(),
            meta,
            bundle,
            analysis: if opts.keep_analyses { analysis } else { None },
            stats,
            live,
        }
    }
}

/// Convenience: run the specs and return only the bundles, in spec order.
/// The figure experiments that post-process raw traces use this.
pub fn run_bundles(specs: &[SessionSpec], threads: usize) -> Vec<TraceBundle> {
    let domino = Domino::with_defaults();
    let opts = SweepOptions {
        threads,
        ..SweepOptions::bundles_only()
    };
    run_sweep(specs, &domino, &opts)
        .outcomes
        .into_iter()
        .map(|o| o.bundle.expect("keep_bundles set"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenarios::{all_cells_grid, SessionGrid};
    use simcore::SimDuration;

    fn small_grid() -> Vec<SessionSpec> {
        SessionGrid::new()
            .cells(scenarios::all_cells())
            .durations([SimDuration::from_secs(12)])
            .master_seed(11)
            .build()
    }

    #[test]
    fn parallel_matches_sequential() {
        let specs = small_grid();
        let domino = Domino::with_defaults();
        let seq = run_sweep(
            &specs,
            &domino,
            &SweepOptions {
                threads: 1,
                ..Default::default()
            },
        );
        let par = run_sweep(
            &specs,
            &domino,
            &SweepOptions {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(seq.outcomes.len(), par.outcomes.len());
        for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.label, b.label);
            assert_eq!(a.meta.seed, b.meta.seed);
        }
        assert_eq!(
            seq.aggregate.total_chain_windows,
            par.aggregate.total_chain_windows
        );
        assert_eq!(seq.aggregate.cause_onsets, par.aggregate.cause_onsets);
        assert_eq!(
            seq.aggregate.consequence_onsets,
            par.aggregate.consequence_onsets
        );
    }

    #[test]
    fn streaming_and_batch_modes_agree() {
        let specs = all_cells_grid(3, SimDuration::from_secs(12));
        let domino = Domino::with_defaults();
        let streaming = run_sweep(
            &specs,
            &domino,
            &SweepOptions {
                analysis: AnalysisMode::Streaming,
                ..Default::default()
            },
        );
        let batch = run_sweep(
            &specs,
            &domino,
            &SweepOptions {
                analysis: AnalysisMode::Batch,
                ..Default::default()
            },
        );
        assert_eq!(
            streaming.aggregate.total_chain_windows,
            batch.aggregate.total_chain_windows
        );
        assert_eq!(
            streaming.aggregate.chain_windows,
            batch.aggregate.chain_windows
        );
        assert_eq!(
            streaming.aggregate.unknown_windows,
            batch.aggregate.unknown_windows
        );
    }

    #[test]
    fn live_mode_agrees_with_batch() {
        let specs = all_cells_grid(5, SimDuration::from_secs(12));
        let domino = Domino::with_defaults();
        // A lateness bound far beyond any in-network delay in these short
        // sessions: the equivalence contract's precondition.
        let live = run_sweep(
            &specs,
            &domino,
            &SweepOptions {
                analysis: AnalysisMode::Live,
                live: LiveConfig {
                    lateness: Lateness::Static(SimDuration::from_secs(30)),
                    early_exit: EarlyExit::Never,
                },
                ..Default::default()
            },
        );
        let batch = run_sweep(
            &specs,
            &domino,
            &SweepOptions {
                analysis: AnalysisMode::Batch,
                ..Default::default()
            },
        );
        assert_eq!(
            live.aggregate.total_chain_windows,
            batch.aggregate.total_chain_windows
        );
        assert_eq!(live.aggregate.chain_windows, batch.aggregate.chain_windows);
        assert_eq!(
            live.aggregate.unknown_windows,
            batch.aggregate.unknown_windows
        );
        for o in &live.outcomes {
            let stats = o.live.expect("live mode reports pipeline stats");
            assert_eq!(stats.late_records_dropped, 0);
            assert!(!stats.early_exited);
            assert!(stats.windows_emitted > 0);
        }
        assert!(batch.outcomes.iter().all(|o| o.live.is_none()));
    }

    #[test]
    fn rate_window_tracks_recent_throughput_not_lifetime() {
        use std::time::Duration;
        let t0 = Instant::now();
        let mut w = RateWindow::new(t0);
        // One completion: no window yet, lifetime fallback.
        let r1 = w.on_completion(t0 + Duration::from_secs(1), 1);
        assert!((r1 - 1.0).abs() < 0.05, "lifetime fallback, got {r1}");
        // A slow first phase (1 session/s)…
        for i in 2..=5u32 {
            w.on_completion(t0 + Duration::from_secs(i as u64), i as usize);
        }
        // …then a fast phase at 10 sessions/s. After RATE_WINDOW fast
        // completions the slow phase has left the window entirely: the
        // reported rate must be ~10/s, not the lifetime mean (~6/s).
        let mut now = t0 + Duration::from_secs(5);
        let mut rate = 0.0;
        for i in 0..(RATE_WINDOW as u32 + 4) {
            now += Duration::from_millis(100);
            rate = w.on_completion(now, 5 + i as usize + 1);
        }
        assert!(
            (rate - 10.0).abs() < 0.5,
            "windowed rate should track the recent 10/s phase, got {rate}"
        );
    }

    #[test]
    fn rate_window_is_stable_under_batched_completions() {
        // A multiplexed worker finishing a co-started batch reports many
        // completions at (essentially) one instant. The windowed rate must
        // track the batch cadence (8 sessions per second here), not spike
        // because a burst compressed the window span — the old
        // `(len - 1) / span` estimate reported ~15/s on the second batch,
        // halving the ETA until the burst left the window.
        use std::time::Duration;
        let t0 = Instant::now();
        let mut w = RateWindow::new(t0);
        let mut rates = Vec::new();
        for batch in 1..=5u64 {
            let at = t0 + Duration::from_secs(batch);
            for k in 0..8u64 {
                rates.push(w.on_completion(at, ((batch - 1) * 8 + k + 1) as usize));
            }
        }
        // From the second batch on: the snapshot delivered by a batch's
        // last completion — the one a consumer actually observes, since all
        // of a batch's callbacks share one instant — sits at the true
        // cadence, and *no* intermediate snapshot ever spikes above it
        // (the spike is what halved ETAs under the old estimator; the
        // partial undercount while a same-instant burst drains lasts zero
        // wall time).
        for batch in 2..=5usize {
            let r = rates[batch * 8 - 1];
            assert!(
                (r - 8.0).abs() < 0.5,
                "batch {batch} settled at {r}/s, expected the 8/s cadence"
            );
        }
        for (i, r) in rates.iter().enumerate().skip(8) {
            assert!(*r <= 8.5, "completion {i}: rate {r} spiked above cadence");
        }
    }

    #[test]
    fn multiplexed_mode_matches_per_worker() {
        // The byte-level contract lives in tests/multiplex_determinism.rs;
        // this is the in-crate smoke check that the mode wires through
        // SweepOptions and produces identical per-session statistics.
        let specs = small_grid();
        let domino = Domino::with_defaults();
        let base = run_sweep(
            &specs,
            &domino,
            &SweepOptions {
                threads: 1,
                ..Default::default()
            },
        );
        let mux = run_sweep(
            &specs,
            &domino,
            &SweepOptions {
                threads: 1,
                execution: ExecutionMode::Multiplexed { width: 3 },
                ..Default::default()
            },
        );
        assert_eq!(base.outcomes.len(), mux.outcomes.len());
        for (a, b) in base.outcomes.iter().zip(&mux.outcomes) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.label, b.label);
            assert_eq!(a.meta.seed, b.meta.seed);
            assert_eq!(a.stats, b.stats, "stats diverged for {}", a.label);
        }
        assert_eq!(base.aggregate, mux.aggregate);
    }

    #[test]
    fn progress_reports_every_session() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let specs = small_grid();
        let domino = Domino::with_defaults();
        let calls = AtomicUsize::new(0);
        let max_completed = AtomicUsize::new(0);
        let report = run_sweep_with_progress(
            &specs,
            &domino,
            &SweepOptions {
                threads: 2,
                ..Default::default()
            },
            &|p| {
                calls.fetch_add(1, Ordering::Relaxed);
                max_completed.fetch_max(p.completed, Ordering::Relaxed);
                assert_eq!(p.total, 4);
                assert!(p.completed >= 1 && p.completed <= p.total);
                assert!(p.sessions_per_sec >= 0.0);
                assert!(p.eta_secs >= 0.0);
            },
        );
        assert_eq!(report.outcomes.len(), 4);
        assert_eq!(calls.load(Ordering::Relaxed), 4, "one callback per session");
        assert_eq!(max_completed.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn aggregate_where_filters_by_class() {
        let specs = small_grid();
        let domino = Domino::with_defaults();
        let report = run_sweep(&specs, &domino, &SweepOptions::default());
        let commercial =
            report.aggregate_where(|o| o.meta.cell_class == telemetry::CellClass::Commercial);
        let private =
            report.aggregate_where(|o| o.meta.cell_class == telemetry::CellClass::Private);
        assert!((commercial.minutes + private.minutes - report.aggregate.minutes).abs() < 1e-9);
    }
}
