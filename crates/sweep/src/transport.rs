//! The coordinator/worker wire layer: length-delimited frames carrying the
//! plain-text shard protocol, a [`Transport`] abstraction over how frames
//! reach the coordinator, and a real TCP implementation for multi-process
//! deployments.
//!
//! **Framing.** Every message is one frame: a header line
//! `frame\t<kind>\t<payload-bytes>\n` followed by exactly that many payload
//! bytes. The payload is plain text in the same canonical-form discipline
//! as [`ShardReport`](crate::ShardReport) — no serde, tab-separated fields,
//! and result payloads embed the full checksummed report encoding, so a
//! corrupted-in-flight result fails [`ShardReport::parse`](crate::ShardReport::parse)
//! at the coordinator instead of folding bad bytes into a merge.
//!
//! **Transport.** The coordinator is a single-threaded event-loop state
//! machine; everything it knows about the outside world arrives as a
//! [`TransportEvent`] and everything it says goes through
//! [`Transport::send`]. Time is read from the transport too
//! ([`Transport::now_ms`]), which is what makes the chaos harness
//! ([`crate::chaos::InProcFleet`]) fully deterministic: it advances a
//! virtual clock instead of reading the machine's, so a fault schedule
//! replays identically on every run. [`TcpTransport`] is the production
//! shape: real sockets, real wall clock, workers as separate processes.

use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Identifies one worker connection for the lifetime of the connection. A
/// worker that reconnects gets a fresh id — the coordinator treats it as a
/// new worker, which is what makes reconnect-after-crash safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub u64);

/// Frame kinds of the coordinator protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Worker → coordinator greeting (carries a display name).
    Hello,
    /// Coordinator → worker: run a spec sub-range.
    Dispatch,
    /// Worker → coordinator: an encoded [`crate::ShardReport`] for a range.
    Result,
    /// Coordinator → worker: no more work; exit cleanly.
    Drain,
}

impl FrameKind {
    fn wire(self) -> &'static str {
        match self {
            FrameKind::Hello => "hello",
            FrameKind::Dispatch => "dispatch",
            FrameKind::Result => "result",
            FrameKind::Drain => "drain",
        }
    }

    fn from_wire(s: &str) -> Option<FrameKind> {
        Some(match s {
            "hello" => FrameKind::Hello,
            "dispatch" => FrameKind::Dispatch,
            "result" => FrameKind::Result,
            "drain" => FrameKind::Drain,
            _ => return None,
        })
    }
}

/// One protocol message: a kind plus a plain-text payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: FrameKind,
    pub payload: String,
}

/// A malformed frame or payload. Fatal for the connection that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError(pub String);

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame error: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

/// Everything a dispatch frame says: which sub-range of which grid to run.
/// `ranges` is the plan's total sub-range count — the worker stamps it into
/// the report's `shard` line so re-runs of the same range are byte-equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchSpec {
    /// Sub-range id (shard index within the coordinator's plan).
    pub range_id: usize,
    /// First global spec index of the range.
    pub start: usize,
    /// Specs in the range.
    pub len: usize,
    /// Total specs in the grid.
    pub total: usize,
    /// Total sub-ranges in the coordinator's plan.
    pub ranges: usize,
}

impl DispatchSpec {
    /// Parses a dispatch payload.
    pub fn parse(payload: &str) -> Result<DispatchSpec, FrameError> {
        let fields: Vec<&str> = payload.split('\t').collect();
        if fields.len() != 6 || fields[0] != "dispatch" {
            return Err(FrameError(format!("bad dispatch payload {payload:?}")));
        }
        let num = |s: &str| -> Result<usize, FrameError> {
            s.parse()
                .map_err(|_| FrameError(format!("bad dispatch field {s:?}")))
        };
        Ok(DispatchSpec {
            range_id: num(fields[1])?,
            start: num(fields[2])?,
            len: num(fields[3])?,
            total: num(fields[4])?,
            ranges: num(fields[5])?,
        })
    }
}

impl Frame {
    /// A worker greeting.
    pub fn hello(name: &str) -> Frame {
        Frame {
            kind: FrameKind::Hello,
            payload: format!("hello\t{name}"),
        }
    }

    /// A dispatch order for one sub-range.
    pub fn dispatch(d: &DispatchSpec) -> Frame {
        Frame {
            kind: FrameKind::Dispatch,
            payload: format!(
                "dispatch\t{}\t{}\t{}\t{}\t{}",
                d.range_id, d.start, d.len, d.total, d.ranges
            ),
        }
    }

    /// A result frame: the range id on the first line, the full encoded
    /// (checksummed) shard report after it.
    pub fn result(range_id: usize, report_text: &str) -> Frame {
        Frame {
            kind: FrameKind::Result,
            payload: format!("result\t{range_id}\n{report_text}"),
        }
    }

    /// The drain order.
    pub fn drain() -> Frame {
        Frame {
            kind: FrameKind::Drain,
            payload: "drain".to_string(),
        }
    }

    /// Splits a result payload into `(range_id, report_text)`.
    pub fn parse_result(payload: &str) -> Result<(usize, &str), FrameError> {
        let (head, rest) = payload
            .split_once('\n')
            .ok_or_else(|| FrameError("result payload missing report".into()))?;
        let id = head
            .strip_prefix("result\t")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| FrameError(format!("bad result header {head:?}")))?;
        Ok((id, rest))
    }

    /// Length-delimited encoding: `frame\t<kind>\t<len>\n` + payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 32);
        out.extend_from_slice(
            format!("frame\t{}\t{}\n", self.kind.wire(), self.payload.len()).as_bytes(),
        );
        out.extend_from_slice(self.payload.as_bytes());
        out
    }

    /// Tries to decode one frame from the front of `buf`. Returns
    /// `Ok(None)` when more bytes are needed; on success the consumed
    /// prefix is drained from `buf`.
    pub fn decode(buf: &mut Vec<u8>) -> Result<Option<Frame>, FrameError> {
        let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
            if buf.len() > 256 {
                return Err(FrameError("oversized frame header".into()));
            }
            return Ok(None);
        };
        let header = std::str::from_utf8(&buf[..nl])
            .map_err(|_| FrameError("non-utf8 frame header".into()))?;
        let mut parts = header.split('\t');
        let (tag, kind, len) = (parts.next(), parts.next(), parts.next());
        if tag != Some("frame") || parts.next().is_some() {
            return Err(FrameError(format!("bad frame header {header:?}")));
        }
        let kind = kind
            .and_then(FrameKind::from_wire)
            .ok_or_else(|| FrameError(format!("unknown frame kind in {header:?}")))?;
        let len: usize = len
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| FrameError(format!("bad frame length in {header:?}")))?;
        if buf.len() < nl + 1 + len {
            return Ok(None);
        }
        let payload = std::str::from_utf8(&buf[nl + 1..nl + 1 + len])
            .map_err(|_| FrameError("non-utf8 frame payload".into()))?
            .to_string();
        buf.drain(..nl + 1 + len);
        Ok(Some(Frame { kind, payload }))
    }
}

/// A send failed because the worker is gone. The coordinator reacts exactly
/// as it does to a [`TransportEvent::Disconnected`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError;

/// What the coordinator's event loop sees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportEvent {
    /// A worker connected (or reconnected under a fresh id).
    Connected(WorkerId),
    /// A frame arrived from a worker.
    Frame(WorkerId, Frame),
    /// A worker's connection died (crash, kill, network partition).
    Disconnected(WorkerId),
}

/// How the coordinator reaches its fleet. Implementations: [`TcpTransport`]
/// (real sockets, wall clock) and [`crate::chaos::InProcFleet`] (in-process
/// workers, virtual clock, scripted faults).
pub trait Transport {
    /// Milliseconds since the transport started. Virtualizable: all
    /// coordinator deadlines (dispatch timeouts, backoff, straggler
    /// detection) are computed against this clock, never `Instant::now`.
    fn now_ms(&self) -> u64;

    /// Sends a frame to a worker. `Err` means the worker is unreachable
    /// *now* — the caller must treat it as dead.
    fn send(&mut self, to: WorkerId, frame: &Frame) -> Result<(), SendError>;

    /// Waits up to `timeout_ms` for the next event. `None` means the
    /// timeout elapsed quietly (and the clock advanced by it).
    fn recv(&mut self, timeout_ms: u64) -> Option<TransportEvent>;
}

// ---------------------------------------------------------------------------
// TCP implementation
// ---------------------------------------------------------------------------

struct TcpConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// Socket-backed [`Transport`]: binds a listener, accepts worker
/// connections, reads frames with non-blocking polls. An optional
/// disconnect hook lets a service respawn replacement workers (the
/// `sharded_sweep --coordinator` example uses it to restart crashed worker
/// processes) — policy stays outside the coordinator state machine.
pub struct TcpTransport {
    listener: TcpListener,
    started: Instant,
    conns: BTreeMap<u64, TcpConn>,
    next_id: u64,
    pending: VecDeque<TransportEvent>,
    on_disconnect: Option<Box<dyn FnMut(u64)>>,
}

impl TcpTransport {
    /// Binds `127.0.0.1:0` (an OS-assigned port; see [`Self::port`]).
    pub fn bind() -> std::io::Result<TcpTransport> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        Ok(TcpTransport {
            listener,
            started: Instant::now(),
            conns: BTreeMap::new(),
            next_id: 0,
            pending: VecDeque::new(),
            on_disconnect: None,
        })
    }

    /// The port workers should connect to.
    pub fn port(&self) -> u16 {
        self.listener.local_addr().map(|a| a.port()).unwrap_or(0)
    }

    /// Registers a hook called with the running death count every time a
    /// worker connection drops (crash or clean exit).
    pub fn set_on_disconnect(&mut self, f: impl FnMut(u64) + 'static) {
        self.on_disconnect = Some(Box::new(f));
    }

    fn drop_conn(&mut self, id: u64) {
        if self.conns.remove(&id).is_some() {
            self.pending
                .push_back(TransportEvent::Disconnected(WorkerId(id)));
            let deaths = self.next_id - self.conns.len() as u64;
            if let Some(f) = &mut self.on_disconnect {
                f(deaths);
            }
        }
    }

    fn poll_once(&mut self) {
        // Accept any waiting connections.
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let id = self.next_id;
                    self.next_id += 1;
                    self.conns.insert(
                        id,
                        TcpConn {
                            stream,
                            buf: Vec::new(),
                        },
                    );
                    self.pending
                        .push_back(TransportEvent::Connected(WorkerId(id)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        // Read whatever each connection has buffered.
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let mut dead = false;
            {
                let conn = self.conns.get_mut(&id).expect("conn exists");
                let mut chunk = [0u8; 16 * 1024];
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            dead = true;
                            break;
                        }
                        Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
                if !dead {
                    loop {
                        match Frame::decode(&mut conn.buf) {
                            Ok(Some(frame)) => self
                                .pending
                                .push_back(TransportEvent::Frame(WorkerId(id), frame)),
                            Ok(None) => break,
                            Err(_) => {
                                // Framing is broken beyond recovery: treat
                                // the connection as dead.
                                dead = true;
                                break;
                            }
                        }
                    }
                }
            }
            if dead {
                self.drop_conn(id);
            }
        }
    }
}

impl Transport for TcpTransport {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn send(&mut self, to: WorkerId, frame: &Frame) -> Result<(), SendError> {
        let Some(conn) = self.conns.get_mut(&to.0) else {
            return Err(SendError);
        };
        // Frames are small except results (KBs); a blocking-ish write loop
        // over the non-blocking socket keeps one code path.
        let bytes = frame.encode();
        let mut off = 0;
        while off < bytes.len() {
            match conn.stream.write(&bytes[off..]) {
                Ok(n) => off += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => {
                    self.drop_conn(to.0);
                    return Err(SendError);
                }
            }
        }
        Ok(())
    }

    fn recv(&mut self, timeout_ms: u64) -> Option<TransportEvent> {
        let deadline = Instant::now() + Duration::from_millis(timeout_ms);
        loop {
            if let Some(ev) = self.pending.pop_front() {
                return Some(ev);
            }
            self.poll_once();
            if let Some(ev) = self.pending.pop_front() {
                return Some(ev);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// Worker-side blocking connection to a [`TcpTransport`] coordinator.
pub struct TcpLink {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl TcpLink {
    /// Connects to `addr` (e.g. `127.0.0.1:41234`).
    pub fn connect(addr: &str) -> std::io::Result<TcpLink> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(TcpLink {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: &Frame) -> std::io::Result<()> {
        self.stream.write_all(&frame.encode())
    }

    /// Blocks for the next frame; `Ok(None)` on clean EOF (coordinator
    /// closed the connection — treat like a drain).
    pub fn recv(&mut self) -> std::io::Result<Option<Frame>> {
        loop {
            match Frame::decode(&mut self.buf) {
                Ok(Some(frame)) => return Ok(Some(frame)),
                Ok(None) => {}
                Err(e) => return Err(std::io::Error::new(ErrorKind::InvalidData, e.to_string())),
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk)? {
                0 => return Ok(None),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_partial_buffers() {
        let frames = [
            Frame::hello("w0"),
            Frame::dispatch(&DispatchSpec {
                range_id: 3,
                start: 6,
                len: 2,
                total: 12,
                ranges: 6,
            }),
            Frame::result(3, "line one\nline two\n"),
            Frame::drain(),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        // Feed the byte stream one byte at a time: the decoder must only
        // yield complete frames and consume exactly what it parsed.
        let mut buf = Vec::new();
        let mut out = Vec::new();
        for &b in &wire {
            buf.push(b);
            while let Some(f) = Frame::decode(&mut buf).expect("valid stream") {
                out.push(f);
            }
        }
        assert!(buf.is_empty());
        assert_eq!(out.len(), frames.len());
        for (a, b) in out.iter().zip(&frames) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn dispatch_payload_round_trips() {
        let d = DispatchSpec {
            range_id: 1,
            start: 4,
            len: 4,
            total: 12,
            ranges: 3,
        };
        let f = Frame::dispatch(&d);
        assert_eq!(DispatchSpec::parse(&f.payload).unwrap(), d);
        assert!(DispatchSpec::parse("dispatch\t1\t2").is_err());
    }

    #[test]
    fn result_payload_splits_id_and_report() {
        let f = Frame::result(7, "report body\nwith lines\n");
        let (id, body) = Frame::parse_result(&f.payload).unwrap();
        assert_eq!(id, 7);
        assert_eq!(body, "report body\nwith lines\n");
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut buf = b"not a frame\n".to_vec();
        assert!(Frame::decode(&mut buf).is_err());
        let mut buf = b"frame\tbogus\t4\nabcd".to_vec();
        assert!(Frame::decode(&mut buf).is_err());
        let mut buf = b"frame\thello\tnope\nabcd".to_vec();
        assert!(Frame::decode(&mut buf).is_err());
    }
}
