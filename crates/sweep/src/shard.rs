//! Shard-and-merge: the distributed execution layer of the sweep engine.
//!
//! A grid too large for one machine is split by a [`ShardPlan`] into
//! contiguous spec-index ranges. Each worker machine runs its range with
//! [`run_shard`] (any per-shard thread count — the underlying
//! [`run_sweep`](crate::run_sweep) is already schedule-independent) and
//! serialises the resulting [`ShardReport`] to versioned plain text
//! ([`ShardReport::encode`] / [`ShardReport::parse`]; hand-rolled, no
//! serde — the offline workspace has no crates.io access). A coordinator
//! collects the files and folds them with [`merge_shards`].
//!
//! **Determinism contract.** The merged report is *byte-identical* to a
//! single-machine [`run_sweep`](crate::run_sweep) over the whole grid, at
//! any shard count and any per-shard thread count. Two mechanisms make the
//! bytes exact:
//!
//! * every float crosses the wire as the hex of its IEEE-754 bits, so
//!   parsing reproduces the producing machine's values bit for bit;
//! * [`merge_shards`] does **not** fold the shards' aggregate
//!   [`ChainStats`] into each other (float addition is not associative, so
//!   grouping by shard could perturb the last bit of `minutes`) — it
//!   re-folds the *per-spec* stats in global spec order, replaying exactly
//!   the operation sequence the single-machine sweep performs.
//!
//! `tests/shard_determinism.rs` at the workspace root enforces the
//! contract across shard counts × thread counts, and CI runs
//! `examples/sharded_sweep.rs` as one shard and as three, then byte-diffs
//! the merged outputs.

use std::ops::Range;

use domino_core::stats::{escape_field, unescape_field, StatsParseError};
use domino_core::{ChainStats, Domino};
use domino_live::LiveStats;
use scenarios::SessionSpec;
use telemetry::{CellClass, Duplexing, SessionMeta, TapStream};

use domino_obs::{fnv1a64, MetricsSnapshot};

use crate::{run_sweep, SessionOutcome, SweepOptions, SweepReport};

/// Splits `total` specs into `count` contiguous index ranges whose sizes
/// differ by at most one (earlier shards take the remainder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    total: usize,
    count: usize,
}

/// One shard of a plan: a contiguous, possibly empty spec-index range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Shard position in the plan.
    pub index: usize,
    /// Total shards in the plan.
    pub count: usize,
    /// Global spec indices this shard runs.
    pub range: Range<usize>,
}

impl ShardPlan {
    /// A plan over `total` specs in `count` shards (`count` is clamped to
    /// at least 1; more shards than specs yields empty tail shards).
    pub fn new(total: usize, count: usize) -> ShardPlan {
        ShardPlan {
            total,
            count: count.max(1),
        }
    }

    /// Total specs covered by the plan.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of shards.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The `i`-th shard's range. Panics if `i >= count()`.
    pub fn shard(&self, i: usize) -> Shard {
        assert!(i < self.count, "shard {i} out of {}", self.count);
        let base = self.total / self.count;
        let rem = self.total % self.count;
        let start = i * base + i.min(rem);
        let len = base + usize::from(i < rem);
        Shard {
            index: i,
            count: self.count,
            range: start..start + len,
        }
    }

    /// All shards in plan order.
    pub fn shards(&self) -> Vec<Shard> {
        (0..self.count).map(|i| self.shard(i)).collect()
    }
}

/// The serialisable subset of a [`SessionOutcome`]: everything a shard
/// report carries per spec (bundles and per-window analyses stay on the
/// machine that produced them).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecOutcome {
    /// Global position in the grid's spec list.
    pub index: usize,
    /// Spec label.
    pub label: String,
    /// Session metadata.
    pub meta: SessionMeta,
    /// Chain statistics (absent when the shard ran `AnalysisMode::None`).
    pub stats: Option<ChainStats>,
    /// Live-pipeline counters (present under `AnalysisMode::Live`).
    pub live: Option<LiveStats>,
}

impl SpecOutcome {
    fn from_outcome(o: &SessionOutcome, offset: usize) -> SpecOutcome {
        SpecOutcome {
            index: o.index + offset,
            label: o.label.clone(),
            meta: o.meta.clone(),
            stats: o.stats.clone(),
            live: o.live,
        }
    }
}

/// Merged [`LiveStats`] across a report's sessions: counter sums, peak
/// maxima, and the number of early-exited sessions. All-integer, so
/// merging is exact and grouping-insensitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveTotals {
    /// Sessions that ran with a live pipeline.
    pub sessions: usize,
    /// Sum of [`LiveStats::records_seen`].
    pub records_seen: usize,
    /// Sum of [`LiveStats::late_records_dropped`].
    pub late_records_dropped: usize,
    /// Sum of [`LiveStats::late_deliveries`].
    pub late_deliveries: usize,
    /// Sum of [`LiveStats::windows_emitted`].
    pub windows_emitted: usize,
    /// Maximum of [`LiveStats::peak_retained_records`].
    pub peak_retained_records: usize,
    /// Sessions an [`EarlyExit`](crate::EarlyExit) policy aborted.
    pub early_exits: usize,
    /// Sum of [`LiveStats::late_drops_by_stream`], indexed by
    /// [`TapStream`]. Serialised on an *optional* `livetotalsdetail` line
    /// emitted only when some entry is nonzero, so reports from healthy
    /// (chaos-free, generous-lateness) sweeps are byte-identical to the
    /// pre-breakout format.
    pub late_drops_by_stream: [usize; TapStream::COUNT],
    /// Sum of [`LiveStats::degraded_windows`]. Rides the same optional
    /// detail line as the per-stream drop breakout.
    pub degraded_windows: usize,
}

impl LiveTotals {
    /// Folds one session's live counters in.
    pub fn add(&mut self, s: &LiveStats) {
        self.sessions += 1;
        self.records_seen += s.records_seen;
        self.late_records_dropped += s.late_records_dropped;
        self.late_deliveries += s.late_deliveries;
        self.windows_emitted += s.windows_emitted;
        self.peak_retained_records = self.peak_retained_records.max(s.peak_retained_records);
        self.early_exits += usize::from(s.early_exited);
        for (total, per) in self
            .late_drops_by_stream
            .iter_mut()
            .zip(s.late_drops_by_stream)
        {
            *total += per;
        }
        self.degraded_windows += s.degraded_windows;
    }
}

/// One shard's results: per-spec outcomes plus the shard-local merged
/// [`ChainStats`] and [`LiveTotals`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Shard position in its plan (0 for a merged or single-machine report).
    pub shard_index: usize,
    /// Shards in the plan (1 for a merged or single-machine report).
    pub shard_count: usize,
    /// First global spec index of the shard's range.
    pub start: usize,
    /// Specs in the full grid (for coverage validation at merge time).
    pub grid_total: usize,
    /// Per-spec outcomes, in global spec order.
    pub outcomes: Vec<SpecOutcome>,
    /// This report's per-spec stats folded in spec order.
    pub aggregate: ChainStats,
    /// This report's live counters folded in spec order.
    pub live_totals: LiveTotals,
}

/// Format version. v2 added the FNV-1a checksum trailer (same scheme as
/// `MetricsSnapshot`): the `end` line carries the 64-bit hex checksum of
/// every byte above it, and [`ShardReport::parse`] rejects a mismatch
/// *before* the aggregate-refold check — closing the gap where a report
/// was corrupted in transit into something that still parsed (e.g. a bit
/// flip inside a label or a hex float, which no refold can catch).
const FORMAT_HEADER: &str = "domino-shard-report\tv2";
const END_TAG: &str = "end\tdomino-shard-report";

impl ShardReport {
    /// Builds a report from sweep outcomes whose `index` fields are
    /// *global* spec indices. The aggregate is re-folded here so it always
    /// matches the outcome list.
    pub(crate) fn from_spec_outcomes(
        shard_index: usize,
        shard_count: usize,
        start: usize,
        grid_total: usize,
        outcomes: Vec<SpecOutcome>,
    ) -> ShardReport {
        let (aggregate, live_totals) = fold_outcomes(&outcomes);
        ShardReport {
            shard_index,
            shard_count,
            start,
            grid_total,
            outcomes,
            aggregate,
            live_totals,
        }
    }

    /// Summarises a whole-grid [`SweepReport`] as the single-shard report
    /// the merge contract compares against.
    pub fn from_sweep(report: &SweepReport) -> ShardReport {
        let outcomes: Vec<SpecOutcome> = report
            .outcomes
            .iter()
            .map(|o| SpecOutcome::from_outcome(o, 0))
            .collect();
        let total = outcomes.len();
        ShardReport::from_spec_outcomes(0, 1, 0, total, outcomes)
    }

    /// Spec indices this report covers.
    pub fn range(&self) -> Range<usize> {
        self.start..self.start + self.outcomes.len()
    }

    /// Serialises the report as versioned plain text. Equal reports encode
    /// to identical bytes: map keys are sorted, floats are written as the
    /// hex of their IEEE-754 bits, and strings are tab/newline-escaped.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{FORMAT_HEADER}");
        let _ = writeln!(out, "shard\t{}\t{}", self.shard_index, self.shard_count);
        let _ = writeln!(out, "range\t{}\t{}", self.start, self.outcomes.len());
        let _ = writeln!(out, "grid\t{}", self.grid_total);
        let _ = writeln!(out, "outcomes\t{}", self.outcomes.len());
        for o in &self.outcomes {
            let _ = writeln!(out, "outcome\t{}\t{}", o.index, escape_field(&o.label));
            let m = &o.meta;
            let _ = writeln!(
                out,
                "meta\t{}\t{}\t{:016x}\t{:016x}\t{}\t{}\t{}\t{}",
                escape_field(&m.cell_name),
                match m.cell_class {
                    CellClass::Commercial => "commercial",
                    CellClass::Private => "private",
                },
                m.carrier_mhz.to_bits(),
                m.bandwidth_mhz.to_bits(),
                match m.duplexing {
                    Duplexing::Fdd => "fdd",
                    Duplexing::Tdd => "tdd",
                },
                m.duration.as_micros(),
                m.seed,
                u8::from(m.has_gnb_log),
            );
            match &o.stats {
                Some(s) => {
                    let _ = writeln!(out, "stats\t1");
                    s.encode_into(&mut out);
                }
                None => {
                    let _ = writeln!(out, "stats\t0");
                }
            }
            match &o.live {
                Some(l) => {
                    let _ = writeln!(
                        out,
                        "live\t1\t{}\t{}\t{}\t{}\t{}\t{}",
                        l.records_seen,
                        l.late_records_dropped,
                        l.late_deliveries,
                        l.windows_emitted,
                        l.peak_retained_records,
                        u8::from(l.early_exited),
                    );
                    // Version-tolerant degraded-telemetry breakout: the
                    // line appears only when something degraded, so
                    // healthy-sweep reports keep their pre-breakout bytes.
                    if l.late_drops_by_stream.iter().any(|&d| d != 0) || l.degraded_windows != 0 {
                        let _ = write!(out, "livedetail");
                        for d in l.late_drops_by_stream {
                            let _ = write!(out, "\t{d}");
                        }
                        let _ = writeln!(out, "\t{}", l.degraded_windows);
                    }
                }
                None => {
                    let _ = writeln!(out, "live\t0");
                }
            }
        }
        let _ = writeln!(out, "aggregate");
        self.aggregate.encode_into(&mut out);
        let t = &self.live_totals;
        let _ = writeln!(
            out,
            "livetotals\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            t.sessions,
            t.records_seen,
            t.late_records_dropped,
            t.late_deliveries,
            t.windows_emitted,
            t.peak_retained_records,
            t.early_exits,
        );
        if t.late_drops_by_stream.iter().any(|&d| d != 0) || t.degraded_windows != 0 {
            let _ = write!(out, "livetotalsdetail");
            for d in t.late_drops_by_stream {
                let _ = write!(out, "\t{d}");
            }
            let _ = writeln!(out, "\t{}", t.degraded_windows);
        }
        let sum = fnv1a64(out.as_bytes());
        let _ = writeln!(out, "{END_TAG}\t{sum:016x}");
        out
    }

    /// Parses text written by [`Self::encode`]. Validates, in order: the
    /// trailing FNV-1a checksum over the whole body (so any in-transit
    /// corruption — even one that would still parse — is rejected first),
    /// the format version, the outcome count against the declared range,
    /// and that the aggregate block re-folds from the per-spec stats.
    pub fn parse(text: &str) -> Result<ShardReport, StatsParseError> {
        let err = |msg: String| StatsParseError(msg);

        // Checksum pre-pass: the last line must be `end\t…\t<fnv1a64>` of
        // every byte above it, with nothing after.
        let stripped = text
            .strip_suffix('\n')
            .ok_or_else(|| err("shard report must end with a newline".into()))?;
        let (_, last) = stripped
            .rsplit_once('\n')
            .ok_or_else(|| err("shard report too short".into()))?;
        let sum_field = last
            .strip_prefix(END_TAG)
            .and_then(|rest| rest.strip_prefix('\t'))
            .ok_or_else(|| err("expected checksummed end line".into()))?;
        let body = &text[..text.len() - last.len() - 1];
        // Exact-width comparison: a re-padded or truncated checksum field
        // can't sneak through.
        if sum_field != format!("{:016x}", fnv1a64(body.as_bytes())) {
            return Err(err("shard report checksum mismatch".into()));
        }

        let mut lines = text.lines();

        let header = next_line(&mut lines)?;
        if header != FORMAT_HEADER {
            return Err(err(format!("bad shard-report header: {header:?}")));
        }
        let (shard_index, shard_count) = {
            let line = next_line(&mut lines)?;
            let rest = line
                .strip_prefix("shard\t")
                .ok_or_else(|| err(format!("expected shard line, got {line:?}")))?;
            parse_pair(rest)?
        };
        let (start, len) = {
            let line = next_line(&mut lines)?;
            let rest = line
                .strip_prefix("range\t")
                .ok_or_else(|| err(format!("expected range line, got {line:?}")))?;
            parse_pair(rest)?
        };
        let grid_total: usize = next_line(&mut lines)?
            .strip_prefix("grid\t")
            .ok_or_else(|| err("expected grid line".into()))?
            .parse()
            .map_err(|_| err("bad grid total".into()))?;
        let n: usize = next_line(&mut lines)?
            .strip_prefix("outcomes\t")
            .ok_or_else(|| err("expected outcomes line".into()))?
            .parse()
            .map_err(|_| err("bad outcome count".into()))?;
        if n != len {
            return Err(err(format!(
                "range declares {len} specs but {n} outcomes follow"
            )));
        }

        let mut outcomes = Vec::with_capacity(n);
        for k in 0..n {
            let line = next_line(&mut lines)?;
            let rest = line
                .strip_prefix("outcome\t")
                .ok_or_else(|| err(format!("expected outcome line, got {line:?}")))?;
            let (index_s, label_s) = rest
                .split_once('\t')
                .ok_or_else(|| err("outcome line missing label".into()))?;
            let index: usize = index_s
                .parse()
                .map_err(|_| err("bad outcome index".into()))?;
            if index != start + k {
                return Err(err(format!(
                    "outcome index {index} out of order (expected {})",
                    start + k
                )));
            }
            let label = unescape_field(label_s)?;
            let meta = parse_meta(next_line(&mut lines)?)?;
            let stats_line = next_line(&mut lines)?;
            let stats = match stats_line {
                "stats\t1" => Some(ChainStats::parse_from(&mut lines)?),
                "stats\t0" => None,
                other => return Err(err(format!("expected stats line, got {other:?}"))),
            };
            let mut live = parse_live(next_line(&mut lines)?)?;
            // Optional degraded-telemetry breakout (absent = all zero,
            // which keeps pre-breakout reports parseable unchanged).
            if let Some(l) = live.as_mut() {
                let mut ahead = lines.clone();
                if let Some(next) = ahead.next() {
                    if next.starts_with("livedetail\t") {
                        let (drops, degraded) = parse_detail_fields(next, "livedetail")?;
                        l.late_drops_by_stream = drops;
                        l.degraded_windows = degraded;
                        lines = ahead;
                    }
                }
            }
            outcomes.push(SpecOutcome {
                index,
                label,
                meta,
                stats,
                live,
            });
        }

        if next_line(&mut lines)? != "aggregate" {
            return Err(err("expected aggregate section".into()));
        }
        let aggregate = ChainStats::parse_from(&mut lines)?;
        let mut live_totals = parse_live_totals(next_line(&mut lines)?)?;
        {
            let mut ahead = lines.clone();
            if let Some(next) = ahead.next() {
                if next.starts_with("livetotalsdetail\t") {
                    let (drops, degraded) = parse_detail_fields(next, "livetotalsdetail")?;
                    live_totals.late_drops_by_stream = drops;
                    live_totals.degraded_windows = degraded;
                    lines = ahead;
                }
            }
        }
        // Checksum already validated; here we only require the end line to
        // sit exactly where the canonical line sequence says it does.
        if !next_line(&mut lines)?.starts_with(END_TAG) {
            return Err(err("expected end of shard report".into()));
        }
        if lines.next().is_some() {
            return Err(err("trailing data after shard report".into()));
        }

        let report = ShardReport {
            shard_index,
            shard_count,
            start,
            grid_total,
            outcomes,
            aggregate,
            live_totals,
        };
        // The aggregate must be what the per-spec stats fold to; a mismatch
        // means the file was truncated or hand-edited.
        let (refold, retotals) = fold_outcomes(&report.outcomes);
        if refold != report.aggregate
            || refold.minutes.to_bits() != report.aggregate.minutes.to_bits()
            || retotals != report.live_totals
        {
            return Err(err(
                "aggregate does not re-fold from per-spec outcomes".into()
            ));
        }
        Ok(report)
    }
}

fn next_line<'a>(lines: &mut std::str::Lines<'a>) -> Result<&'a str, StatsParseError> {
    lines
        .next()
        .ok_or_else(|| StatsParseError("unexpected end of input".into()))
}

/// Folds per-spec stats and live counters in outcome (= spec) order.
fn fold_outcomes(outcomes: &[SpecOutcome]) -> (ChainStats, LiveTotals) {
    let mut agg = ChainStats::default();
    let mut totals = LiveTotals::default();
    for o in outcomes {
        if let Some(s) = &o.stats {
            agg.merge(s);
        }
        if let Some(l) = &o.live {
            totals.add(l);
        }
    }
    (agg, totals)
}

fn parse_pair(rest: &str) -> Result<(usize, usize), StatsParseError> {
    let (a, b) = rest
        .split_once('\t')
        .ok_or_else(|| StatsParseError("expected two tab-separated fields".into()))?;
    Ok((
        a.parse()
            .map_err(|_| StatsParseError("bad integer field".into()))?,
        b.parse()
            .map_err(|_| StatsParseError("bad integer field".into()))?,
    ))
}

fn parse_meta(line: &str) -> Result<SessionMeta, StatsParseError> {
    let err = |msg: &str| StatsParseError(format!("{msg} in meta line {line:?}"));
    let rest = line
        .strip_prefix("meta\t")
        .ok_or_else(|| err("expected meta line"))?;
    let fields: Vec<&str> = rest.split('\t').collect();
    if fields.len() != 8 {
        return Err(err("expected 8 meta fields"));
    }
    Ok(SessionMeta {
        cell_name: unescape_field(fields[0])?,
        cell_class: match fields[1] {
            "commercial" => CellClass::Commercial,
            "private" => CellClass::Private,
            _ => return Err(err("bad cell class")),
        },
        carrier_mhz: f64::from_bits(
            u64::from_str_radix(fields[2], 16).map_err(|_| err("bad carrier bits"))?,
        ),
        bandwidth_mhz: f64::from_bits(
            u64::from_str_radix(fields[3], 16).map_err(|_| err("bad bandwidth bits"))?,
        ),
        duplexing: match fields[4] {
            "fdd" => Duplexing::Fdd,
            "tdd" => Duplexing::Tdd,
            _ => return Err(err("bad duplexing")),
        },
        duration: simcore::SimDuration::from_micros(
            fields[5].parse().map_err(|_| err("bad duration"))?,
        ),
        seed: fields[6].parse().map_err(|_| err("bad seed"))?,
        has_gnb_log: match fields[7] {
            "0" => false,
            "1" => true,
            _ => return Err(err("bad gnb flag")),
        },
    })
}

fn parse_live(line: &str) -> Result<Option<LiveStats>, StatsParseError> {
    let err = |msg: &str| StatsParseError(format!("{msg} in live line {line:?}"));
    if line == "live\t0" {
        return Ok(None);
    }
    let rest = line
        .strip_prefix("live\t1\t")
        .ok_or_else(|| err("expected live line"))?;
    let fields: Vec<&str> = rest.split('\t').collect();
    if fields.len() != 6 {
        return Err(err("expected 6 live fields"));
    }
    let num =
        |s: &str| -> Result<usize, StatsParseError> { s.parse().map_err(|_| err("bad count")) };
    Ok(Some(LiveStats {
        records_seen: num(fields[0])?,
        late_records_dropped: num(fields[1])?,
        late_deliveries: num(fields[2])?,
        windows_emitted: num(fields[3])?,
        peak_retained_records: num(fields[4])?,
        early_exited: match fields[5] {
            "0" => false,
            "1" => true,
            _ => return Err(err("bad early-exit flag")),
        },
        // Filled from the optional `livedetail` line by the caller.
        ..Default::default()
    }))
}

/// Parses a `livedetail` / `livetotalsdetail` line: one late-drop count per
/// [`TapStream`] followed by the degraded-window count.
fn parse_detail_fields(
    line: &str,
    tag: &str,
) -> Result<([usize; TapStream::COUNT], usize), StatsParseError> {
    let err = |msg: &str| StatsParseError(format!("{msg} in {tag} line {line:?}"));
    let rest = line
        .strip_prefix(tag)
        .and_then(|r| r.strip_prefix('\t'))
        .ok_or_else(|| err("expected detail line"))?;
    let fields: Vec<&str> = rest.split('\t').collect();
    if fields.len() != TapStream::COUNT + 1 {
        return Err(err("wrong detail field count"));
    }
    let mut drops = [0usize; TapStream::COUNT];
    for (slot, f) in drops.iter_mut().zip(&fields) {
        *slot = f.parse().map_err(|_| err("bad count"))?;
    }
    let degraded = fields[TapStream::COUNT]
        .parse()
        .map_err(|_| err("bad count"))?;
    Ok((drops, degraded))
}

fn parse_live_totals(line: &str) -> Result<LiveTotals, StatsParseError> {
    let err = |msg: &str| StatsParseError(format!("{msg} in livetotals line {line:?}"));
    let rest = line
        .strip_prefix("livetotals\t")
        .ok_or_else(|| err("expected livetotals"))?;
    let fields: Vec<&str> = rest.split('\t').collect();
    if fields.len() != 7 {
        return Err(err("expected 7 livetotals fields"));
    }
    let num =
        |s: &str| -> Result<usize, StatsParseError> { s.parse().map_err(|_| err("bad count")) };
    Ok(LiveTotals {
        sessions: num(fields[0])?,
        records_seen: num(fields[1])?,
        late_records_dropped: num(fields[2])?,
        late_deliveries: num(fields[3])?,
        windows_emitted: num(fields[4])?,
        peak_retained_records: num(fields[5])?,
        early_exits: num(fields[6])?,
        // Filled from the optional `livetotalsdetail` line by the caller.
        ..Default::default()
    })
}

/// Runs one shard of a grid: the specs in `shard.range`, fanned across
/// `opts.threads` like any sweep, with outcome indices mapped back to the
/// *global* spec positions so shard reports concatenate into the
/// single-machine report.
pub fn run_shard(
    specs: &[SessionSpec],
    shard: &Shard,
    domino: &Domino,
    opts: &SweepOptions,
) -> ShardReport {
    run_shard_with_metrics(specs, shard, domino, opts).0
}

/// [`run_shard`] returning the shard's merged [`MetricsSnapshot`] alongside
/// the report (present when [`SweepOptions::obs`] is enabled). The
/// snapshot's `Sim` section merges across shards exactly like the report
/// itself: [`MetricsSnapshot::merge`] over the per-shard snapshots equals
/// the single-machine sweep's, byte for byte, at any shard count.
pub fn run_shard_with_metrics(
    specs: &[SessionSpec],
    shard: &Shard,
    domino: &Domino,
    opts: &SweepOptions,
) -> (ShardReport, Option<MetricsSnapshot>) {
    assert!(
        shard.range.end <= specs.len(),
        "shard range {:?} exceeds grid of {}",
        shard.range,
        specs.len()
    );
    let report = run_sweep(&specs[shard.range.clone()], domino, opts);
    let outcomes: Vec<SpecOutcome> = report
        .outcomes
        .iter()
        .map(|o| SpecOutcome::from_outcome(o, shard.range.start))
        .collect();
    (
        ShardReport::from_spec_outcomes(
            shard.index,
            shard.count,
            shard.range.start,
            specs.len(),
            outcomes,
        ),
        report.metrics,
    )
}

/// Error from [`merge_shards`]. Each way a shard set can fail to tile the
/// grid gets its own variant, so a coordinator can distinguish "a shard is
/// missing" (retry it) from "two shards claim the same specs" (a duplicate
/// slipped past range-id dedup — a bug worth alerting on) from "a report
/// belongs to a different grid entirely".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No reports were given.
    Empty,
    /// Reports disagree on the grid size.
    GridMismatch {
        /// Grid size of the first report.
        expected: usize,
        /// The disagreeing size.
        found: usize,
    },
    /// Two reports cover overlapping spec ranges.
    Overlap {
        /// Start of the report that re-covers already-covered specs.
        start: usize,
        /// End (exclusive) of the coverage so far — `start` is below it.
        prior_end: usize,
    },
    /// After sorting by range start, a gap separates two reports.
    Gap {
        /// First uncovered spec index.
        expected: usize,
        /// The next range start actually found.
        found: usize,
    },
    /// Contiguous coverage from 0, but it stops short of (or is
    /// inconsistent with) the declared grid total.
    WrongTotal {
        /// Specs actually covered.
        covered: usize,
        /// Grid size every report declared.
        declared: usize,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no shard reports to merge"),
            MergeError::GridMismatch { expected, found } => {
                write!(
                    f,
                    "shard reports disagree on grid size: {expected} vs {found}"
                )
            }
            MergeError::Overlap { start, prior_end } => write!(
                f,
                "shard ranges overlap: a shard starting at {start} re-covers specs below {prior_end}"
            ),
            MergeError::Gap { expected, found } => write!(
                f,
                "shard ranges leave a gap: expected index {expected}, next shard starts at {found}"
            ),
            MergeError::WrongTotal { covered, declared } => write!(
                f,
                "shard ranges cover {covered} specs but the grid declares {declared}"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Folds shard reports — in shard (range) order — into the whole-grid
/// report. Outcomes concatenate in global spec order and the aggregate is
/// re-folded from per-spec stats, so the result is byte-identical
/// (via [`ShardReport::encode`]) to a single-machine sweep of the grid.
pub fn merge_shards(reports: &[ShardReport]) -> Result<ShardReport, MergeError> {
    if reports.is_empty() {
        return Err(MergeError::Empty);
    }
    let grid_total = reports[0].grid_total;
    for r in reports {
        if r.grid_total != grid_total {
            return Err(MergeError::GridMismatch {
                expected: grid_total,
                found: r.grid_total,
            });
        }
    }
    let mut ordered: Vec<&ShardReport> = reports.iter().collect();
    ordered.sort_by_key(|r| r.start);
    let mut outcomes: Vec<SpecOutcome> = Vec::with_capacity(grid_total);
    for r in ordered {
        // Empty reports (tail shards of an over-split plan) tile trivially
        // and can share a start with a non-empty one.
        if r.outcomes.is_empty() {
            continue;
        }
        if r.start < outcomes.len() {
            return Err(MergeError::Overlap {
                start: r.start,
                prior_end: outcomes.len(),
            });
        }
        if r.start > outcomes.len() {
            return Err(MergeError::Gap {
                expected: outcomes.len(),
                found: r.start,
            });
        }
        outcomes.extend(r.outcomes.iter().cloned());
    }
    if outcomes.len() != grid_total {
        return Err(MergeError::WrongTotal {
            covered: outcomes.len(),
            declared: grid_total,
        });
    }
    Ok(ShardReport::from_spec_outcomes(
        0, 1, 0, grid_total, outcomes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(seed: u64) -> SessionMeta {
        SessionMeta {
            cell_name: "Test cell / tab\ttricky".to_string(),
            cell_class: CellClass::Private,
            carrier_mhz: 3547.2,
            bandwidth_mhz: 20.0,
            duplexing: Duplexing::Tdd,
            duration: simcore::SimDuration::from_secs(12),
            seed,
            has_gnb_log: true,
        }
    }

    fn stats(n: usize) -> ChainStats {
        let mut s = ChainStats {
            minutes: n as f64 * 0.2 + 0.01,
            ..Default::default()
        };
        s.cause_onsets.insert("harq_retx".to_string(), n);
        s.consequence_windows
            .insert("jitter_buffer_drain".to_string(), 2 * n + 1);
        s.chain_windows.insert(
            ("harq_retx".to_string(), "jitter_buffer_drain".to_string()),
            n,
        );
        s.total_chain_windows = n;
        s
    }

    fn outcome(index: usize, with_live: bool) -> SpecOutcome {
        SpecOutcome {
            index,
            label: format!("spec {index} / rep0"),
            meta: meta(index as u64),
            stats: Some(stats(index + 1)),
            live: with_live.then_some(LiveStats {
                records_seen: 100 * index + 7,
                late_records_dropped: index,
                late_deliveries: 0,
                windows_emitted: 10 + index,
                peak_retained_records: 500 - index,
                early_exited: index % 2 == 1,
                late_drops_by_stream: {
                    // Attribute the drops to the gNB stream so the detail
                    // line round-trips whenever any spec dropped records.
                    let mut per = [0usize; TapStream::COUNT];
                    per[TapStream::Gnb.idx()] = index;
                    per
                },
                degraded_windows: index / 2,
            }),
        }
    }

    fn report_over(range: Range<usize>, shard: (usize, usize), total: usize) -> ShardReport {
        let outcomes: Vec<SpecOutcome> = range.clone().map(|i| outcome(i, true)).collect();
        ShardReport::from_spec_outcomes(shard.0, shard.1, range.start, total, outcomes)
    }

    #[test]
    fn plan_tiles_the_grid_contiguously() {
        for total in [0usize, 1, 5, 8, 17] {
            for count in [1usize, 2, 3, 5, 9] {
                let plan = ShardPlan::new(total, count);
                let mut covered = 0usize;
                for s in plan.shards() {
                    assert_eq!(s.range.start, covered, "contiguous");
                    covered = s.range.end;
                }
                assert_eq!(covered, total, "full coverage");
                let sizes: Vec<usize> = plan.shards().iter().map(|s| s.range.len()).collect();
                let (min, max) = (
                    sizes.iter().min().copied().unwrap_or(0),
                    sizes.iter().max().copied().unwrap_or(0),
                );
                assert!(max - min <= 1, "balanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn encode_parse_round_trips() {
        let r = report_over(3..7, (1, 3), 10);
        let text = r.encode();
        let parsed = ShardReport::parse(&text).expect("parses");
        assert_eq!(parsed, r);
        assert_eq!(parsed.encode(), text, "canonical encode");
    }

    #[test]
    fn parse_rejects_tampering() {
        let r = report_over(0..3, (0, 1), 3);
        let text = r.encode();
        assert!(ShardReport::parse(&text.replace("v2", "v3")).is_err());
        // Dropping an outcome breaks the declared count (and the checksum).
        let mut truncated: Vec<&str> = text.lines().collect();
        truncated.truncate(8);
        assert!(ShardReport::parse(&(truncated.join("\n") + "\n")).is_err());
        // Editing a per-spec counter trips the checksum trailer.
        let tampered = text.replacen("kv\tharq_retx\t1", "kv\tharq_retx\t9", 1);
        assert_ne!(tampered, text);
        assert!(ShardReport::parse(&tampered).is_err());
    }

    #[test]
    fn checksum_trailer_catches_corrupted_but_parseable_bytes() {
        let r = report_over(0..3, (0, 1), 3);
        let text = r.encode();
        // A flipped character inside a *label* parses fine structurally and
        // perturbs nothing the aggregate refold can see — only the checksum
        // trailer rejects it.
        let corrupted = text.replacen("rep0", "rep1", 1);
        assert_ne!(corrupted, text);
        let e = ShardReport::parse(&corrupted).expect_err("must reject");
        assert!(e.0.contains("checksum"), "got {e:?}");
        // A forger who recomputes the checksum after editing a per-spec
        // counter still fails: the aggregate no longer re-folds.
        let tampered = text.replacen("kv\tharq_retx\t1", "kv\tharq_retx\t9", 1);
        let body_end = tampered.rfind(END_TAG).unwrap();
        let body = &tampered[..body_end];
        let forged = format!("{body}{END_TAG}\t{:016x}\n", fnv1a64(body.as_bytes()));
        let e = ShardReport::parse(&forged).expect_err("must reject");
        assert!(e.0.contains("re-fold"), "got {e:?}");
        // Trailing garbage after the end line is rejected.
        assert!(ShardReport::parse(&format!("{text}x\n")).is_err());
        assert!(ShardReport::parse(text.trim_end()).is_err(), "no newline");
    }

    #[test]
    fn merge_requires_full_coverage() {
        let a = report_over(0..4, (0, 3), 10);
        let b = report_over(4..7, (1, 3), 10);
        let c = report_over(7..10, (2, 3), 10);
        assert!(matches!(merge_shards(&[]), Err(MergeError::Empty)));
        assert!(matches!(
            merge_shards(&[a.clone(), c.clone()]),
            Err(MergeError::Gap {
                expected: 4,
                found: 7
            })
        ));
        let merged = merge_shards(&[c.clone(), a.clone(), b.clone()]).expect("out of order ok");
        assert_eq!(merged.range(), 0..10);
        assert_eq!(merged.shard_count, 1);
        // Merged == the whole-range report, byte for byte.
        let whole = report_over(0..10, (0, 1), 10);
        assert_eq!(merged.encode(), whole.encode());
        // Grid-size disagreement is rejected.
        let wrong = report_over(4..7, (1, 3), 11);
        assert!(matches!(
            merge_shards(&[a, wrong, c]),
            Err(MergeError::GridMismatch { .. })
        ));
    }

    #[test]
    fn merge_rejects_overlapping_shards() {
        // 0..4 and 2..7 double-cover specs 2 and 3: a duplicate delivery
        // that slipped past range-id dedup must not silently mis-fold.
        let a = report_over(0..4, (0, 3), 10);
        let dup = report_over(2..7, (1, 3), 10);
        let c = report_over(7..10, (2, 3), 10);
        assert!(matches!(
            merge_shards(&[a, dup, c]),
            Err(MergeError::Overlap {
                start: 2,
                prior_end: 4
            })
        ));
    }

    #[test]
    fn merge_rejects_wrong_total() {
        // Contiguous from 0 but every report agrees on a grid of 12 while
        // only 10 specs are covered: the tail shard never reported.
        let a = report_over(0..4, (0, 3), 12);
        let b = report_over(4..10, (1, 3), 12);
        assert!(matches!(
            merge_shards(&[a, b]),
            Err(MergeError::WrongTotal {
                covered: 10,
                declared: 12
            })
        ));
        // Over-coverage relative to the declared total is WrongTotal too.
        let a = report_over(0..4, (0, 2), 3);
        assert!(matches!(
            merge_shards(&[a]),
            Err(MergeError::WrongTotal {
                covered: 4,
                declared: 3
            })
        ));
    }

    #[test]
    fn empty_shards_merge_cleanly() {
        let plan = ShardPlan::new(2, 4);
        assert_eq!(plan.shard(3).range.len(), 0);
        let reports: Vec<ShardReport> = plan
            .shards()
            .iter()
            .map(|s| report_over(s.range.clone(), (s.index, s.count), 2))
            .collect();
        let merged = merge_shards(&reports).expect("merges");
        assert_eq!(merged.encode(), report_over(0..2, (0, 1), 2).encode());
    }

    #[test]
    fn live_totals_fold_counters_and_peaks() {
        let r = report_over(0..4, (0, 1), 4);
        let t = r.live_totals;
        assert_eq!(t.sessions, 4);
        assert_eq!(t.records_seen, 7 + 107 + 207 + 307);
        assert_eq!(t.late_records_dropped, 6);
        assert_eq!(t.peak_retained_records, 500);
        assert_eq!(t.early_exits, 2);
        assert_eq!(t.late_drops_by_stream[TapStream::Gnb.idx()], 6);
        assert_eq!(t.late_drops_by_stream[TapStream::Packet.idx()], 0);
        // index/2 per outcome: 0 + 0 + 1 + 1.
        assert_eq!(t.degraded_windows, 2);
    }

    #[test]
    fn detail_lines_are_omitted_when_healthy() {
        // All-zero breakout: the encoded bytes must not contain the
        // optional detail lines, so pre-breakout goldens stay stable.
        let outcomes: Vec<SpecOutcome> = (0..3)
            .map(|i| {
                let mut o = outcome(i, true);
                let l = o.live.as_mut().unwrap();
                l.late_records_dropped = 0;
                l.late_drops_by_stream = [0; TapStream::COUNT];
                l.degraded_windows = 0;
                o
            })
            .collect();
        let r = ShardReport::from_spec_outcomes(0, 1, 0, 3, outcomes);
        let text = r.encode();
        assert!(!text.contains("livedetail"), "healthy report has no detail");
        let parsed = ShardReport::parse(&text).expect("parses");
        assert_eq!(parsed, r);
        assert_eq!(parsed.encode(), text);
    }
}
