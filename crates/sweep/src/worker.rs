//! The worker side of the coordinator protocol: run dispatched sub-ranges
//! with the ordinary [`run_shard`] path and stream results back as frames.
//!
//! Two layers. [`SweepWorker`] is the pure range executor — dispatch in,
//! result frame out — used directly by the in-process chaos harness so
//! simulated workers run *exactly* the code a remote worker runs.
//! [`run_worker`] wraps it in a blocking frame loop over a [`WorkerLink`]
//! (TCP in production) for the `sharded_sweep --worker` process mode.
//!
//! [`WorkerFaults`] gives the process mode the same scripted failure
//! vocabulary the in-process harness has: die after N specs (crash
//! mid-range, result never sent) or corrupt the first result's bytes. CI's
//! chaos job uses these to kill real processes under a real coordinator.

use domino_core::Domino;
use scenarios::SessionSpec;

use crate::shard::{run_shard, Shard};
use crate::transport::{DispatchSpec, Frame, FrameError, FrameKind, TcpLink};
use crate::SweepOptions;

/// Scripted failures for a process worker. Defaults to none.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerFaults {
    /// Crash (exit without sending a result) once this many specs have
    /// been *started* — the range that crosses the threshold is computed
    /// but its result is never delivered, i.e. a kill mid-range.
    pub exit_after_specs: Option<usize>,
    /// Flip one byte in the first result's report text before sending.
    /// The coordinator's checksum must catch it and re-dispatch.
    pub corrupt_first_result: bool,
}

/// Why [`run_worker`] returned.
#[derive(Debug)]
pub enum WorkerExit {
    /// Coordinator sent a drain (or closed the connection): clean exit.
    Drained,
    /// A scripted [`WorkerFaults::exit_after_specs`] fired: the process
    /// should exit abruptly without cleanup.
    Killed,
    /// The link failed.
    Link(String),
}

/// Executes dispatches. Stateless between ranges except for fault
/// bookkeeping, so the same executor serves long-lived workers.
pub struct SweepWorker<'a> {
    specs: &'a [SessionSpec],
    domino: &'a Domino,
    opts: &'a SweepOptions,
    faults: WorkerFaults,
    specs_started: usize,
    results_sent: usize,
}

impl<'a> SweepWorker<'a> {
    /// A fault-free executor over the full grid.
    pub fn new(specs: &'a [SessionSpec], domino: &'a Domino, opts: &'a SweepOptions) -> Self {
        Self::with_faults(specs, domino, opts, WorkerFaults::default())
    }

    /// An executor with scripted faults.
    pub fn with_faults(
        specs: &'a [SessionSpec],
        domino: &'a Domino,
        opts: &'a SweepOptions,
        faults: WorkerFaults,
    ) -> Self {
        SweepWorker {
            specs,
            domino,
            opts,
            faults,
            specs_started: 0,
            results_sent: 0,
        }
    }

    /// Specs this worker has started (dispatch accepted), including ones
    /// whose result was suppressed by a fault.
    pub fn specs_started(&self) -> usize {
        self.specs_started
    }

    /// Runs one dispatched range and builds its result frame. `None` means
    /// the scripted kill fired: the range was started but no result may be
    /// sent, and the caller must die.
    pub fn run_dispatch(&mut self, d: &DispatchSpec) -> Result<Option<Frame>, FrameError> {
        if d.start + d.len > self.specs.len() || d.total != self.specs.len() {
            return Err(FrameError(format!(
                "dispatch {:?} does not fit grid of {}",
                d,
                self.specs.len()
            )));
        }
        self.specs_started += d.len;
        let killed = self
            .faults
            .exit_after_specs
            .is_some_and(|n| self.specs_started > n);
        let shard = Shard {
            index: d.range_id,
            count: d.ranges,
            range: d.start..d.start + d.len,
        };
        let report = run_shard(self.specs, &shard, self.domino, self.opts);
        if killed {
            return Ok(None);
        }
        let mut text = report.encode();
        if self.faults.corrupt_first_result && self.results_sent == 0 {
            corrupt_in_place(&mut text);
        }
        self.results_sent += 1;
        Ok(Some(Frame::result(d.range_id, &text)))
    }
}

/// Flips one payload byte without breaking the framing: picks a mid-text
/// byte that is not a tab or newline and XORs a bit, so the frame still
/// decodes but the report checksum no longer matches.
pub fn corrupt_in_place(text: &mut str) {
    // Report text is pure ASCII; XOR 0x02 on a graphic byte stays graphic
    // ASCII, so the String stays valid UTF-8 and the framing stays intact.
    let bytes = unsafe { text.as_bytes_mut() };
    let n = bytes.len();
    for i in 0..n {
        let idx = (n / 2 + i) % n;
        if bytes[idx].is_ascii_graphic() && bytes[idx] != b'\t' {
            bytes[idx] ^= 0x02;
            return;
        }
    }
}

/// A frame pipe a worker loop can run over. [`TcpLink`] is the production
/// implementation; tests can drive [`run_worker`] over an in-memory one.
pub trait WorkerLink {
    /// Sends one frame to the coordinator.
    fn send(&mut self, frame: &Frame) -> Result<(), String>;
    /// Blocks for the next frame; `Ok(None)` on clean EOF.
    fn recv(&mut self) -> Result<Option<Frame>, String>;
}

impl WorkerLink for TcpLink {
    fn send(&mut self, frame: &Frame) -> Result<(), String> {
        TcpLink::send(self, frame).map_err(|e| e.to_string())
    }

    fn recv(&mut self) -> Result<Option<Frame>, String> {
        TcpLink::recv(self).map_err(|e| e.to_string())
    }
}

/// The blocking worker loop: greet, then serve dispatches until drained,
/// killed by a scripted fault, or the link dies.
pub fn run_worker(
    link: &mut dyn WorkerLink,
    name: &str,
    specs: &[SessionSpec],
    domino: &Domino,
    opts: &SweepOptions,
    faults: WorkerFaults,
) -> WorkerExit {
    let mut exec = SweepWorker::with_faults(specs, domino, opts, faults);
    if let Err(e) = link.send(&Frame::hello(name)) {
        return WorkerExit::Link(e);
    }
    loop {
        let frame = match link.recv() {
            Ok(Some(frame)) => frame,
            Ok(None) => return WorkerExit::Drained,
            Err(e) => return WorkerExit::Link(e),
        };
        match frame.kind {
            FrameKind::Drain => return WorkerExit::Drained,
            FrameKind::Dispatch => {
                let d = match DispatchSpec::parse(&frame.payload) {
                    Ok(d) => d,
                    Err(e) => return WorkerExit::Link(e.to_string()),
                };
                match exec.run_dispatch(&d) {
                    Ok(Some(result)) => {
                        if let Err(e) = link.send(&result) {
                            return WorkerExit::Link(e);
                        }
                    }
                    Ok(None) => return WorkerExit::Killed,
                    Err(e) => return WorkerExit::Link(e.to_string()),
                }
            }
            // Hello/Result from the coordinator make no sense; ignore.
            FrameKind::Hello | FrameKind::Result => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardReport;
    use scenarios::all_cells_grid;
    use simcore::SimDuration;

    fn grid() -> Vec<SessionSpec> {
        all_cells_grid(7, SimDuration::from_secs(6))
    }

    #[test]
    fn dispatch_produces_parseable_result() {
        let specs = grid();
        let domino = Domino::with_defaults();
        let opts = SweepOptions::default().threads(1);
        let mut w = SweepWorker::new(&specs, &domino, &opts);
        let d = DispatchSpec {
            range_id: 1,
            start: 2,
            len: 2,
            total: specs.len(),
            ranges: 4,
        };
        let frame = w.run_dispatch(&d).unwrap().expect("no kill scripted");
        let (id, body) = Frame::parse_result(&frame.payload).unwrap();
        assert_eq!(id, 1);
        let report = ShardReport::parse(body).expect("worker result parses");
        assert_eq!(report.start, 2);
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.grid_total, specs.len());
    }

    #[test]
    fn scripted_kill_suppresses_the_crossing_result() {
        let specs = grid();
        let domino = Domino::with_defaults();
        let opts = SweepOptions::default().threads(1);
        let faults = WorkerFaults {
            exit_after_specs: Some(3),
            ..WorkerFaults::default()
        };
        let mut w = SweepWorker::with_faults(&specs, &domino, &opts, faults);
        let d0 = DispatchSpec {
            range_id: 0,
            start: 0,
            len: 2,
            total: specs.len(),
            ranges: 4,
        };
        assert!(w.run_dispatch(&d0).unwrap().is_some(), "under threshold");
        let d1 = DispatchSpec {
            range_id: 1,
            start: 2,
            len: 2,
            total: specs.len(),
            ranges: 4,
        };
        assert!(
            w.run_dispatch(&d1).unwrap().is_none(),
            "crossing range dies mid-flight"
        );
    }

    #[test]
    fn corruption_breaks_the_checksum_but_not_the_frame() {
        let specs = grid();
        let domino = Domino::with_defaults();
        let opts = SweepOptions::default().threads(1);
        let faults = WorkerFaults {
            corrupt_first_result: true,
            ..WorkerFaults::default()
        };
        let mut w = SweepWorker::with_faults(&specs, &domino, &opts, faults);
        let d = DispatchSpec {
            range_id: 0,
            start: 0,
            len: 2,
            total: specs.len(),
            ranges: 2,
        };
        let frame = w.run_dispatch(&d).unwrap().unwrap();
        // Frame still decodes end-to-end…
        let mut wire = frame.encode();
        let mut buf = std::mem::take(&mut wire);
        let decoded = Frame::decode(&mut buf).unwrap().unwrap();
        let (_, body) = Frame::parse_result(&decoded.payload).unwrap();
        // …but the embedded report fails its checksum.
        assert!(ShardReport::parse(body).is_err());
        // Second result is clean.
        let d2 = DispatchSpec {
            range_id: 1,
            start: 2,
            len: 2,
            total: specs.len(),
            ranges: 2,
        };
        let frame2 = w.run_dispatch(&d2).unwrap().unwrap();
        let (_, body2) = Frame::parse_result(&frame2.payload).unwrap();
        assert!(ShardReport::parse(body2).is_ok());
    }
}
