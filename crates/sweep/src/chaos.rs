//! Deterministic fault injection for the coordinator: a declarative,
//! seedable [`FaultPlan`] and an in-process fleet ([`InProcFleet`]) that
//! implements [`Transport`] over a **virtual clock**.
//!
//! The fleet simulates worker processes: a dispatch runs the real
//! [`SweepWorker`](crate::worker::SweepWorker) synchronously (same bytes a
//! remote worker would produce), then schedules its result frame on an
//! event heap at `now + cost`, where cost is a synthetic per-spec latency.
//! Faults rewrite that schedule — kill the worker before delivery, delay
//! the frame, flip a byte, deliver it twice, or drop it. Because time only
//! advances through [`Transport::recv`] and every event is ordered by
//! `(virtual time, sequence)`, a given `(grid, plan, config)` triple
//! replays the exact same interleaving on every run — which is what lets
//! the chaos matrix assert *byte-identical* merged output rather than
//! merely "eventually consistent".

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use domino_core::Domino;
use rand::{rngs::StdRng, Rng, SeedableRng};
use scenarios::SessionSpec;

use crate::transport::{
    DispatchSpec, Frame, FrameKind, SendError, Transport, TransportEvent, WorkerId,
};
use crate::worker::{corrupt_in_place, SweepWorker};
use crate::SweepOptions;

/// One scripted failure. Worker indices refer to the *initial* fleet
/// (respawned workers are fresh and fault-free); range indices refer to
/// the coordinator's sub-range ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Kill initial worker `worker` once it has started more than
    /// `after_specs` specs — the crossing range is computed but never
    /// delivered (a crash mid-range). Optionally respawn a replacement
    /// after `respawn_after_ms` of virtual time.
    KillWorker {
        worker: usize,
        after_specs: usize,
        respawn_after_ms: Option<u64>,
    },
    /// Add `delay_ms` of virtual latency to every delivery of range
    /// `range`'s result (straggler).
    DelayRange { range: usize, delay_ms: u64 },
    /// Flip a byte in the next `times` deliveries of range `range`'s
    /// result; the coordinator's checksum must catch each one.
    CorruptResult { range: usize, times: u32 },
    /// Deliver every result of range `range` twice (duplicate delivery;
    /// the coordinator must discard by range id).
    DuplicateResult { range: usize },
    /// Silently drop the next `times` deliveries of range `range`'s
    /// result (the worker did the work; the bytes never arrive), forcing
    /// a deadline expiry + retry.
    DropResult { range: usize, times: u32 },
}

/// A seeded, declarative failure schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed recorded for reproduction (informational for hand-written
    /// plans; the generator seed for [`FaultPlan::random`]).
    pub seed: u64,
    /// The scripted faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// No faults: a clean fleet.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A random-but-reproducible plan for a fleet of `workers` and a sweep
    /// of `ranges` sub-ranges: each fault family is included with some
    /// probability and aimed at a random target. Kills always respawn, so
    /// any plan terminates on any fleet size.
    pub fn random(seed: u64, workers: usize, ranges: usize) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00c0_ffee_d15c_0bad);
        let mut faults = Vec::new();
        if rng.gen_bool(0.6) {
            faults.push(Fault::KillWorker {
                worker: rng.gen_range(0..workers.max(1)),
                after_specs: rng.gen_range(0..6),
                respawn_after_ms: Some(rng.gen_range(10..80)),
            });
        }
        if rng.gen_bool(0.6) {
            faults.push(Fault::DelayRange {
                range: rng.gen_range(0..ranges.max(1)),
                delay_ms: rng.gen_range(40..120),
            });
        }
        if rng.gen_bool(0.6) {
            faults.push(Fault::CorruptResult {
                range: rng.gen_range(0..ranges.max(1)),
                times: rng.gen_range(1..=2),
            });
        }
        if rng.gen_bool(0.5) {
            faults.push(Fault::DuplicateResult {
                range: rng.gen_range(0..ranges.max(1)),
            });
        }
        if rng.gen_bool(0.5) {
            faults.push(Fault::DropResult {
                range: rng.gen_range(0..ranges.max(1)),
                times: rng.gen_range(1..=2),
            });
        }
        FaultPlan { seed, faults }
    }
}

/// What the fleet actually injected, for asserting that nothing was
/// swallowed (e.g. every corrupted delivery must surface in
/// `CoordinatorStats::corrupt_reports`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Workers killed.
    pub kills: u32,
    /// Replacement workers spawned.
    pub respawns: u32,
    /// Result deliveries with a flipped byte.
    pub corruptions: u32,
    /// Extra (duplicate) deliveries scheduled.
    pub duplicates: u32,
    /// Result deliveries silently dropped.
    pub drops: u32,
    /// Result deliveries delayed.
    pub delays: u32,
}

struct Ev {
    at: u64,
    seq: u64,
    kind: EvKind,
}

enum EvKind {
    Connect { id: u64, fresh: bool },
    Frame(u64, Frame),
    Disconnect(u64),
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct SimWorker<'a> {
    exec: SweepWorker<'a>,
    /// Index into the kill table; `None` for respawned workers.
    kill_slot: Option<usize>,
    /// Virtual instant the worker becomes free to start the next range.
    free_at: u64,
    /// Scheduled death, if a kill has fired.
    dead_at: Option<u64>,
}

struct KillState {
    after_specs: usize,
    respawn_after_ms: Option<u64>,
    fired: bool,
}

/// Virtual-clock [`Transport`] running real sweep workers in-process under
/// a scripted [`FaultPlan`]. Synthetic latency: a range of `n` specs costs
/// `base_ms + n * per_spec_ms` of virtual time on its worker.
pub struct InProcFleet<'a> {
    specs: &'a [SessionSpec],
    domino: &'a Domino,
    opts: &'a SweepOptions,
    now: u64,
    seq: u64,
    events: BinaryHeap<Reverse<Ev>>,
    workers: BTreeMap<u64, SimWorker<'a>>,
    next_id: u64,
    kills: Vec<(usize, KillState)>,
    delays: Vec<(usize, u64)>,
    corrupts: Vec<(usize, u32)>,
    duplicates: Vec<usize>,
    drops: Vec<(usize, u32)>,
    /// Tally of injected faults, for post-run assertions.
    pub log: FaultLog,
    base_ms: u64,
    per_spec_ms: u64,
}

impl<'a> InProcFleet<'a> {
    /// A fleet of `workers` initial workers under `plan`. Worker `i`
    /// connects at virtual time `i` ms.
    pub fn new(
        specs: &'a [SessionSpec],
        domino: &'a Domino,
        opts: &'a SweepOptions,
        workers: usize,
        plan: &FaultPlan,
    ) -> InProcFleet<'a> {
        let mut fleet = InProcFleet {
            specs,
            domino,
            opts,
            now: 0,
            seq: 0,
            events: BinaryHeap::new(),
            workers: BTreeMap::new(),
            next_id: 0,
            kills: Vec::new(),
            delays: Vec::new(),
            corrupts: Vec::new(),
            duplicates: Vec::new(),
            drops: Vec::new(),
            log: FaultLog::default(),
            base_ms: 4,
            per_spec_ms: 3,
        };
        for f in &plan.faults {
            match *f {
                Fault::KillWorker {
                    worker,
                    after_specs,
                    respawn_after_ms,
                } => fleet.kills.push((
                    worker,
                    KillState {
                        after_specs,
                        respawn_after_ms,
                        fired: false,
                    },
                )),
                Fault::DelayRange { range, delay_ms } => fleet.delays.push((range, delay_ms)),
                Fault::CorruptResult { range, times } => fleet.corrupts.push((range, times)),
                Fault::DuplicateResult { range } => fleet.duplicates.push(range),
                Fault::DropResult { range, times } => fleet.drops.push((range, times)),
            }
        }
        for i in 0..workers {
            let at = i as u64;
            fleet.push_ev(
                at,
                EvKind::Connect {
                    id: i as u64,
                    fresh: false,
                },
            );
        }
        fleet.next_id = workers as u64;
        fleet
    }

    fn push_ev(&mut self, at: u64, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Ev { at, seq, kind }));
    }

    /// Total virtual latency for a range of `len` specs.
    fn cost_ms(&self, len: usize) -> u64 {
        self.base_ms + self.per_spec_ms * len as u64
    }
}

impl Transport for InProcFleet<'_> {
    fn now_ms(&self) -> u64 {
        self.now
    }

    fn send(&mut self, to: WorkerId, frame: &Frame) -> Result<(), SendError> {
        let now = self.now;
        match frame.kind {
            // Drains to already-gone workers are fine to drop on the floor.
            FrameKind::Drain => Ok(()),
            FrameKind::Dispatch => {
                let d = DispatchSpec::parse(&frame.payload).map_err(|_| SendError)?;
                let cost = self.cost_ms(d.len);
                // Run the real worker executor for this range.
                let (start_at, result, kill_slot, specs_started) = {
                    let w = self.workers.get_mut(&to.0).ok_or(SendError)?;
                    if w.dead_at.is_some_and(|t| t <= now) {
                        return Err(SendError);
                    }
                    // A worker whose death is already scheduled accepts
                    // the dispatch (the coordinator can't know yet) but
                    // never delivers: the specs vanish with the process.
                    if w.dead_at.is_some() {
                        return Ok(());
                    }
                    let start_at = w.free_at.max(now);
                    let result = w.exec.run_dispatch(&d).map_err(|_| SendError)?;
                    (start_at, result, w.kill_slot, w.exec.specs_started())
                };
                // Does a scripted kill fire on this range?
                let kill = kill_slot.and_then(|slot| {
                    let ks = &mut self.kills[slot].1;
                    if !ks.fired && specs_started > ks.after_specs {
                        ks.fired = true;
                        Some(ks.respawn_after_ms)
                    } else {
                        None
                    }
                });
                if let Some(respawn_after) = kill {
                    // Dies partway through this range: after half its
                    // share of the work, before the result goes out.
                    let die_at = start_at + cost / 2;
                    if let Some(w) = self.workers.get_mut(&to.0) {
                        w.dead_at = Some(die_at);
                    }
                    self.log.kills += 1;
                    self.push_ev(die_at, EvKind::Disconnect(to.0));
                    if let Some(wait) = respawn_after {
                        let id = self.next_id;
                        self.next_id += 1;
                        self.log.respawns += 1;
                        self.push_ev(die_at + wait, EvKind::Connect { id, fresh: true });
                    }
                    return Ok(());
                }
                let done_at = start_at + cost;
                if let Some(w) = self.workers.get_mut(&to.0) {
                    w.free_at = done_at;
                }
                // The fleet scripts faults itself, so the executor always
                // yields a result frame (no worker-level kill configured).
                let Some(mut result) = result else {
                    return Ok(());
                };
                let mut deliver_at = done_at;
                if let Some(&(_, delay)) = self.delays.iter().find(|(r, _)| *r == d.range_id) {
                    deliver_at += delay;
                    self.log.delays += 1;
                }
                // Drop before corrupt: a dropped delivery never hits the
                // wire, so it must not count as an injected corruption
                // (the determinism fuzz asserts every logged corruption
                // surfaces in `CoordinatorStats::corrupt_reports`).
                if let Some((_, times)) = self
                    .drops
                    .iter_mut()
                    .find(|(r, times)| *r == d.range_id && *times > 0)
                {
                    *times -= 1;
                    self.log.drops += 1;
                    return Ok(());
                }
                let mut corrupted = false;
                if let Some((_, times)) = self
                    .corrupts
                    .iter_mut()
                    .find(|(r, times)| *r == d.range_id && *times > 0)
                {
                    *times -= 1;
                    let (id, body) = Frame::parse_result(&result.payload).map_err(|_| SendError)?;
                    let mut text = body.to_string();
                    corrupt_in_place(&mut text);
                    result = Frame::result(id, &text);
                    self.log.corruptions += 1;
                    corrupted = true;
                }
                let dup = self.duplicates.contains(&d.range_id);
                self.push_ev(deliver_at, EvKind::Frame(to.0, result.clone()));
                if dup {
                    self.log.duplicates += 1;
                    if corrupted {
                        // The duplicate of a corrupted delivery carries
                        // the same corrupted bytes.
                        self.log.corruptions += 1;
                    }
                    self.push_ev(deliver_at + 2, EvKind::Frame(to.0, result));
                }
                Ok(())
            }
            // The coordinator never sends hello/result.
            FrameKind::Hello | FrameKind::Result => Ok(()),
        }
    }

    fn recv(&mut self, timeout_ms: u64) -> Option<TransportEvent> {
        let horizon = self.now.saturating_add(timeout_ms.max(1));
        let due = self
            .events
            .peek()
            .is_some_and(|Reverse(ev)| ev.at <= horizon);
        if !due {
            self.now = horizon;
            return None;
        }
        let Reverse(ev) = self.events.pop().expect("peeked");
        self.now = self.now.max(ev.at);
        match ev.kind {
            EvKind::Connect { id, fresh } => {
                let kill_slot = if fresh {
                    None
                } else {
                    self.kills
                        .iter()
                        .position(|(w, ks)| *w == id as usize && !ks.fired)
                };
                self.workers.insert(
                    id,
                    SimWorker {
                        exec: SweepWorker::new(self.specs, self.domino, self.opts),
                        kill_slot,
                        free_at: self.now,
                        dead_at: None,
                    },
                );
                Some(TransportEvent::Connected(WorkerId(id)))
            }
            EvKind::Frame(id, frame) => {
                // A dead worker's undelivered frames never reach here (they
                // are simply not scheduled), so anything on the heap is a
                // legitimate delivery.
                Some(TransportEvent::Frame(WorkerId(id), frame))
            }
            EvKind::Disconnect(id) => {
                self.workers.remove(&id);
                Some(TransportEvent::Disconnected(WorkerId(id)))
            }
        }
    }
}
