//! The fault-tolerant shard coordinator: a single-threaded event-loop
//! state machine that owns a sweep's sub-range plan, dispatches ranges to
//! workers over a [`Transport`], and survives crashes, stragglers,
//! corrupted reports, and duplicate deliveries — while producing a merged
//! [`ShardReport`] **byte-identical** to single-machine
//! [`run_sweep`](crate::run_sweep).
//!
//! Why byte-identity is cheap to guarantee here: workers run the ordinary
//! [`run_shard`](crate::shard::run_shard) path, whose outcome bytes depend
//! only on `(specs, range)` — never on which worker ran it, how many times
//! it was retried, or when it finished. The coordinator keeps *at most one
//! accepted report per range id* (first complete result wins; duplicates
//! are discarded by id), and [`merge_shards`] re-folds aggregates in
//! global spec order. So any schedule of failures and retries converges on
//! the same byte string, and the chaos matrix in
//! `tests/coordinator_determinism.rs` proves it.
//!
//! Robustness machinery, all driven off [`Transport::now_ms`] so it is
//! deterministic under the virtual-clock chaos harness:
//!
//! - **Deadlines + backoff**: each dispatch gets `dispatch_timeout_ms`; an
//!   expired range is requeued with exponential backoff (base doubling,
//!   capped) and a bounded attempt budget.
//! - **Straggler re-issue**: a range in flight on exactly one worker for
//!   longer than `straggler_after_ms` is re-issued to an idle worker;
//!   whichever copy finishes first wins.
//! - **Work-stealing**: when a worker dies, its in-flight ranges requeue
//!   immediately (no backoff — the worker failed, not the range).
//! - **Corruption containment**: results are parsed through
//!   [`ShardReport::parse`], whose fnv1a64 trailer rejects flipped bytes
//!   before any aggregate math; a corrupt result counts against the
//!   range's attempt budget and requeues it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use domino_obs::{Counter, Gauge, Recorder};

use crate::shard::{merge_shards, ShardPlan, ShardReport};
use crate::transport::{DispatchSpec, Frame, FrameKind, Transport, TransportEvent, WorkerId};

/// Tuning knobs for [`run_coordinator`]. All times are in transport
/// milliseconds (wall clock on TCP, virtual under the chaos harness).
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Specs per dispatched sub-range (the work-stealing granularity).
    pub chunk_specs: usize,
    /// Outstanding dispatches allowed per worker.
    pub prefetch: usize,
    /// Hold the first dispatch until this many workers are connected, so
    /// work spreads across a known fleet instead of racing the earliest
    /// connections. Applies only until the threshold is first met; later
    /// deaths never re-gate dispatch. `0` dispatches eagerly. If the
    /// threshold is not met within `worker_wait_ms`, the run fails with
    /// [`CoordinatorError::WorkersLost`].
    pub min_workers: usize,
    /// Deadline for one dispatch before it is declared lost.
    pub dispatch_timeout_ms: u64,
    /// First retry backoff; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Backoff cap.
    pub backoff_max_ms: u64,
    /// Attempts (dispatches) allowed per range before the run fails.
    pub max_attempts: u32,
    /// A range in flight on a single worker this long is re-issued to an
    /// idle worker (straggler hedge).
    pub straggler_after_ms: u64,
    /// How long the coordinator tolerates having work pending and zero
    /// connected workers before giving up.
    pub worker_wait_ms: u64,
    /// After the last range completes, how long to keep reading late
    /// results (hedge losers, duplicate deliveries, delayed originals) so
    /// they are accounted in the stats instead of left unread. The drain
    /// ends early once no worker has outstanding work.
    pub drain_grace_ms: u64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            chunk_specs: 1,
            prefetch: 2,
            min_workers: 0,
            dispatch_timeout_ms: 120_000,
            backoff_base_ms: 50,
            backoff_max_ms: 5_000,
            max_attempts: 5,
            straggler_after_ms: 30_000,
            worker_wait_ms: 60_000,
            drain_grace_ms: 250,
        }
    }
}

/// What the coordinator counted while it ran. Plain data: encode for the
/// CI artifact with [`CoordinatorStats::encode`], fold into a metrics
/// [`Recorder`] with [`CoordinatorStats::record_into`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordinatorStats {
    /// Workers that ever connected (including respawns).
    pub workers_connected: u64,
    /// Peak simultaneously-connected workers.
    pub workers_peak: u64,
    /// Worker connections that died before drain.
    pub worker_deaths: u64,
    /// Dispatch frames sent (includes retries and straggler re-issues).
    pub dispatches: u64,
    /// Ranges completed with an accepted report.
    pub ranges_completed: u64,
    /// Dispatches that expired their deadline and were requeued.
    pub retries: u64,
    /// Hedge dispatches issued against slow single-copy ranges.
    pub straggler_reissues: u64,
    /// Ranges reclaimed from dead workers and requeued.
    pub steals: u64,
    /// Result frames discarded because their range was already done.
    pub duplicates_discarded: u64,
    /// Result frames whose report failed to parse (checksum or structure)
    /// — every injected corruption must land here.
    pub corrupt_reports: u64,
    /// Total connected-time across all worker connections.
    pub worker_live_ms: u64,
    /// Transport time from start to merged report.
    pub wall_ms: u64,
}

impl CoordinatorStats {
    /// Plain-text encoding (one `key\tvalue` per line, fixed order) for
    /// the CI artifact.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "domino-coordinator-stats\tv1");
        for (k, v) in [
            ("workers_connected", self.workers_connected),
            ("workers_peak", self.workers_peak),
            ("worker_deaths", self.worker_deaths),
            ("dispatches", self.dispatches),
            ("ranges_completed", self.ranges_completed),
            ("retries", self.retries),
            ("straggler_reissues", self.straggler_reissues),
            ("steals", self.steals),
            ("duplicates_discarded", self.duplicates_discarded),
            ("corrupt_reports", self.corrupt_reports),
            ("worker_live_ms", self.worker_live_ms),
            ("wall_ms", self.wall_ms),
        ] {
            let _ = writeln!(out, "{k}\t{v}");
        }
        out
    }

    /// Folds the counters into the `coord/*` metric families. Zero-cost
    /// no-op when the recorder is off, like all domino-obs hooks.
    pub fn record_into(&self, rec: &mut Recorder) {
        rec.add(Counter::CoordDispatches, self.dispatches);
        rec.add(Counter::CoordRangesCompleted, self.ranges_completed);
        rec.add(Counter::CoordRetries, self.retries);
        rec.add(Counter::CoordStragglerReissues, self.straggler_reissues);
        rec.add(Counter::CoordSteals, self.steals);
        rec.add(Counter::CoordDuplicates, self.duplicates_discarded);
        rec.add(Counter::CoordCorruptReports, self.corrupt_reports);
        rec.add(Counter::CoordWorkerDeaths, self.worker_deaths);
        rec.add(Counter::CoordWorkerLiveMs, self.worker_live_ms);
        rec.gauge_max(Gauge::CoordWorkersPeak, self.workers_peak);
    }
}

/// A progress snapshot streamed to the caller after every state change
/// that completes a range or changes the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoordinatorProgress {
    /// Sub-ranges with an accepted report.
    pub ranges_done: usize,
    /// Total sub-ranges in the plan.
    pub ranges_total: usize,
    /// Specs covered by accepted reports.
    pub specs_done: usize,
    /// Total specs in the grid.
    pub specs_total: usize,
    /// Currently connected workers.
    pub workers: usize,
    /// Dispatches currently in flight.
    pub in_flight: usize,
    /// Running merged chain-window count over accepted ranges (merged in
    /// completion order — display only; the final merge is spec-ordered).
    pub chain_windows: u64,
}

/// Why a coordinated sweep failed. The merged-output cases can only be
/// internal bugs (workers run the same deterministic code), so they carry
/// enough context to debug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordinatorError {
    /// A range exhausted its attempt budget.
    RangeFailed { range: usize, attempts: u32 },
    /// No workers were connected for longer than
    /// [`CoordinatorConfig::worker_wait_ms`] with work still pending.
    WorkersLost { pending_ranges: usize },
    /// The accepted per-range reports did not merge (internal bug).
    Merge(crate::shard::MergeError),
}

impl std::fmt::Display for CoordinatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordinatorError::RangeFailed { range, attempts } => {
                write!(f, "range {range} failed after {attempts} attempts")
            }
            CoordinatorError::WorkersLost { pending_ranges } => {
                write!(f, "no workers left with {pending_ranges} ranges pending")
            }
            CoordinatorError::Merge(e) => write!(f, "accepted reports failed to merge: {e}"),
        }
    }
}

impl std::error::Error for CoordinatorError {}

/// A finished coordinated sweep: the merged report (byte-identical to
/// single-machine [`run_sweep`](crate::run_sweep) on the same grid) plus
/// the robustness counters.
#[derive(Debug, Clone)]
pub struct CoordinatorRun {
    /// Merged full-grid report (`shard 0/1`).
    pub report: ShardReport,
    /// What it took to get there.
    pub stats: CoordinatorStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RangeStatus {
    /// Waiting for a worker slot; not dispatched before `not_before_ms`.
    Pending { not_before_ms: u64 },
    /// At least one copy is in flight.
    InFlight,
    /// An accepted report exists.
    Done,
}

/// One live dispatch of a range on a worker.
#[derive(Debug, Clone, Copy)]
struct InFlightCopy {
    worker: WorkerId,
    issued_ms: u64,
    deadline_ms: u64,
    /// Set once this copy has triggered a straggler hedge, so a slow range
    /// gets at most one extra copy per dispatch.
    hedged: bool,
}

struct RangeState {
    start: usize,
    len: usize,
    status: RangeStatus,
    attempts: u32,
    copies: Vec<InFlightCopy>,
    report: Option<ShardReport>,
}

struct WorkerState {
    connected_at_ms: u64,
    /// Range ids this worker is believed to be computing.
    outstanding: Vec<usize>,
}

/// Runs a coordinated sweep over `total_specs` specs: builds the sub-range
/// plan from `cfg.chunk_specs`, then drives the event loop until every
/// range has an accepted report or the run fails. `progress` is invoked
/// on fleet changes and range completions.
pub fn run_coordinator<T: Transport>(
    total_specs: usize,
    transport: &mut T,
    cfg: &CoordinatorConfig,
    mut progress: impl FnMut(&CoordinatorProgress),
) -> Result<CoordinatorRun, CoordinatorError> {
    let chunk = cfg.chunk_specs.max(1);
    let n_ranges = total_specs.div_ceil(chunk);
    let plan = ShardPlan::new(total_specs, n_ranges.max(1));
    let mut ranges: Vec<RangeState> = plan
        .shards()
        .iter()
        .take(n_ranges)
        .map(|s| RangeState {
            start: s.range.start,
            len: s.range.len(),
            status: RangeStatus::Pending { not_before_ms: 0 },
            attempts: 0,
            copies: Vec::new(),
            report: None,
        })
        .collect();

    let mut workers: BTreeMap<u64, WorkerState> = BTreeMap::new();
    let mut stats = CoordinatorStats::default();
    let mut ranges_done = 0usize;
    let mut specs_done = 0usize;
    let mut chain_windows = 0u64;
    let mut in_flight = 0usize;
    let start_ms = transport.now_ms();
    let mut workers_empty_since = Some(start_ms);
    let mut fleet_assembled = cfg.min_workers == 0;

    let emit = |progress: &mut dyn FnMut(&CoordinatorProgress),
                ranges_done: usize,
                specs_done: usize,
                chain_windows: u64,
                workers: usize,
                in_flight: usize| {
        progress(&CoordinatorProgress {
            ranges_done,
            ranges_total: n_ranges,
            specs_done,
            specs_total: total_specs,
            workers,
            in_flight,
            chain_windows,
        });
    };

    'main: loop {
        let now = transport.now_ms();

        // 1. Expire copies whose deadline passed: drop the copy, count a
        //    retry, and requeue the range with exponential backoff once no
        //    copies remain. A range out of attempts fails the run.
        for (id, r) in ranges.iter_mut().enumerate() {
            if r.status != RangeStatus::InFlight {
                continue;
            }
            let before = r.copies.len();
            r.copies.retain(|c| c.deadline_ms > now);
            let expired = before - r.copies.len();
            if expired > 0 {
                stats.retries += expired as u64;
                in_flight -= expired;
            }
            if r.copies.is_empty() && before > 0 {
                if r.attempts >= cfg.max_attempts {
                    return Err(CoordinatorError::RangeFailed {
                        range: id,
                        attempts: r.attempts,
                    });
                }
                let backoff = (cfg.backoff_base_ms << (r.attempts.saturating_sub(1)).min(16))
                    .min(cfg.backoff_max_ms);
                r.status = RangeStatus::Pending {
                    not_before_ms: now + backoff,
                };
            }
        }

        // 2. Fill idle worker capacity with pending ranges, lowest range
        //    id first, workers in id order — a deterministic schedule for
        //    a deterministic transport.
        let mut dispatch_queue: Vec<usize> = ranges
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                matches!(r.status, RangeStatus::Pending { not_before_ms } if not_before_ms <= now)
            })
            .map(|(id, _)| id)
            .collect();
        dispatch_queue.reverse(); // pop() takes the lowest id
        if !fleet_assembled && workers.len() >= cfg.min_workers {
            fleet_assembled = true;
        }
        if fleet_assembled && !dispatch_queue.is_empty() {
            let ids: Vec<u64> = workers.keys().copied().collect();
            'workers: for wid in ids {
                loop {
                    let capacity = {
                        let w = workers.get(&wid).expect("listed");
                        cfg.prefetch.saturating_sub(w.outstanding.len())
                    };
                    if capacity == 0 {
                        continue 'workers;
                    }
                    let Some(range_id) = dispatch_queue.pop() else {
                        break 'workers;
                    };
                    dispatch_range(
                        range_id,
                        WorkerId(wid),
                        now,
                        cfg,
                        total_specs,
                        n_ranges,
                        transport,
                        &mut ranges,
                        &mut workers,
                        &mut stats,
                        &mut in_flight,
                    );
                }
            }
        }

        // 3. Straggler hedge: a range in flight on exactly one worker for
        //    too long gets a second copy on a fully idle worker.
        let hedge_due: Vec<usize> = ranges
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.status == RangeStatus::InFlight
                    && r.copies.len() == 1
                    && !r.copies[0].hedged
                    && now.saturating_sub(r.copies[0].issued_ms) >= cfg.straggler_after_ms
            })
            .map(|(id, _)| id)
            .collect();
        for range_id in hedge_due {
            let Some(idle) = workers
                .iter()
                .find(|(_, w)| w.outstanding.is_empty())
                .map(|(&id, _)| id)
            else {
                break;
            };
            ranges[range_id].copies[0].hedged = true;
            stats.straggler_reissues += 1;
            dispatch_range(
                range_id,
                WorkerId(idle),
                now,
                cfg,
                total_specs,
                n_ranges,
                transport,
                &mut ranges,
                &mut workers,
                &mut stats,
                &mut in_flight,
            );
        }

        // 4. Done?
        if ranges_done == n_ranges {
            break 'main;
        }

        // 5. Fleet watchdog: pending work but nobody to run it — or a
        //    `min_workers` gate that never released.
        if workers.is_empty() {
            let since = *workers_empty_since.get_or_insert(now);
            if now.saturating_sub(since) >= cfg.worker_wait_ms {
                return Err(CoordinatorError::WorkersLost {
                    pending_ranges: n_ranges - ranges_done,
                });
            }
        } else if !fleet_assembled && now.saturating_sub(start_ms) >= cfg.worker_wait_ms {
            return Err(CoordinatorError::WorkersLost {
                pending_ranges: n_ranges - ranges_done,
            });
        }

        // 6. Sleep until the next deadline (copy expiry, backoff release,
        //    straggler check, watchdog) and handle one event.
        let mut wake = now + 100;
        for r in &ranges {
            match r.status {
                RangeStatus::Pending { not_before_ms } if not_before_ms > now => {
                    wake = wake.min(not_before_ms);
                }
                RangeStatus::InFlight => {
                    for c in &r.copies {
                        wake = wake.min(c.deadline_ms);
                        if r.copies.len() == 1 && !c.hedged {
                            wake = wake.min(c.issued_ms + cfg.straggler_after_ms);
                        }
                    }
                }
                _ => {}
            }
        }
        if let Some(since) = workers_empty_since {
            if workers.is_empty() {
                wake = wake.min(since + cfg.worker_wait_ms);
            }
        }
        if !fleet_assembled {
            wake = wake.min(start_ms + cfg.worker_wait_ms);
        }
        let timeout = wake.saturating_sub(now).clamp(1, 30_000);

        match transport.recv(timeout) {
            None => continue,
            Some(TransportEvent::Connected(wid)) => {
                workers.insert(
                    wid.0,
                    WorkerState {
                        connected_at_ms: transport.now_ms(),
                        outstanding: Vec::new(),
                    },
                );
                workers_empty_since = None;
                stats.workers_connected += 1;
                stats.workers_peak = stats.workers_peak.max(workers.len() as u64);
                emit(
                    &mut progress,
                    ranges_done,
                    specs_done,
                    chain_windows,
                    workers.len(),
                    in_flight,
                );
            }
            Some(TransportEvent::Disconnected(wid)) => {
                let now = transport.now_ms();
                if let Some(w) = workers.remove(&wid.0) {
                    stats.worker_deaths += 1;
                    stats.worker_live_ms += now.saturating_sub(w.connected_at_ms);
                    for range_id in w.outstanding {
                        let r = &mut ranges[range_id];
                        let before = r.copies.len();
                        r.copies.retain(|c| c.worker != wid);
                        in_flight -= before - r.copies.len();
                        if r.status == RangeStatus::InFlight && r.copies.is_empty() {
                            // Steal: requeue immediately — the worker
                            // failed, not the range.
                            stats.steals += 1;
                            r.status = RangeStatus::Pending { not_before_ms: now };
                        }
                    }
                    if workers.is_empty() {
                        workers_empty_since = Some(now);
                    }
                    emit(
                        &mut progress,
                        ranges_done,
                        specs_done,
                        chain_windows,
                        workers.len(),
                        in_flight,
                    );
                }
            }
            Some(TransportEvent::Frame(wid, frame)) => {
                if frame.kind != FrameKind::Result {
                    // Hello frames (and anything unexpected) carry no
                    // coordinator state.
                    continue;
                }
                let Ok((range_id, body)) = Frame::parse_result(&frame.payload) else {
                    stats.corrupt_reports += 1;
                    continue;
                };
                if range_id >= n_ranges {
                    stats.corrupt_reports += 1;
                    continue;
                }
                // This worker is no longer computing the range, whatever
                // the outcome.
                if let Some(w) = workers.get_mut(&wid.0) {
                    w.outstanding.retain(|&id| id != range_id);
                }
                let r = &mut ranges[range_id];
                let before = r.copies.len();
                r.copies.retain(|c| c.worker != wid);
                in_flight -= before - r.copies.len();

                // Parse BEFORE the duplicate check: a corrupted delivery
                // must surface in `corrupt_reports` even when a healthy
                // copy already completed the range.
                let parsed = ShardReport::parse(body).ok().filter(|rep| {
                    rep.start == r.start
                        && rep.outcomes.len() == r.len
                        && rep.grid_total == total_specs
                });
                let Some(report) = parsed else {
                    stats.corrupt_reports += 1;
                    if r.status == RangeStatus::InFlight && r.copies.is_empty() {
                        if r.attempts >= cfg.max_attempts {
                            return Err(CoordinatorError::RangeFailed {
                                range: range_id,
                                attempts: r.attempts,
                            });
                        }
                        let now = transport.now_ms();
                        let backoff = (cfg.backoff_base_ms
                            << (r.attempts.saturating_sub(1)).min(16))
                        .min(cfg.backoff_max_ms);
                        r.status = RangeStatus::Pending {
                            not_before_ms: now + backoff,
                        };
                    }
                    continue;
                };
                if r.status == RangeStatus::Done {
                    stats.duplicates_discarded += 1;
                    continue;
                }
                // First complete result wins.
                chain_windows += report
                    .outcomes
                    .iter()
                    .filter_map(|o| o.stats.as_ref())
                    .map(|s| s.total_chain_windows as u64)
                    .sum::<u64>();
                r.report = Some(report);
                r.status = RangeStatus::Done;
                in_flight -= r.copies.len();
                r.copies.clear();
                ranges_done += 1;
                specs_done += r.len;
                stats.ranges_completed += 1;
                emit(
                    &mut progress,
                    ranges_done,
                    specs_done,
                    chain_windows,
                    workers.len(),
                    in_flight,
                );
            }
        }
    }

    // All ranges accepted. Wall time stops at the merged result; the
    // grace drain below is shutdown accounting, not sweep time.
    stats.wall_ms = transport.now_ms();

    // Post-completion drain: copies that lost a race (straggler hedges,
    // duplicate deliveries, delayed originals) may still be in flight.
    // Read them for a bounded grace window so they land in the stats
    // (`duplicates_discarded`, `corrupt_reports`) instead of vanishing
    // with the connection. Ends early once no worker owes a result.
    let drain_until = stats.wall_ms + cfg.drain_grace_ms;
    while workers.values().any(|w| !w.outstanding.is_empty()) {
        let now = transport.now_ms();
        if now >= drain_until {
            break;
        }
        match transport.recv((drain_until - now).clamp(1, 1_000)) {
            None => {}
            Some(TransportEvent::Connected(wid)) => {
                workers.insert(
                    wid.0,
                    WorkerState {
                        connected_at_ms: transport.now_ms(),
                        outstanding: Vec::new(),
                    },
                );
                stats.workers_connected += 1;
            }
            Some(TransportEvent::Disconnected(wid)) => {
                if let Some(w) = workers.remove(&wid.0) {
                    stats.worker_deaths += 1;
                    stats.worker_live_ms += transport.now_ms().saturating_sub(w.connected_at_ms);
                }
            }
            Some(TransportEvent::Frame(wid, frame)) => {
                if frame.kind != FrameKind::Result {
                    continue;
                }
                let Ok((range_id, body)) = Frame::parse_result(&frame.payload) else {
                    stats.corrupt_reports += 1;
                    continue;
                };
                if let Some(w) = workers.get_mut(&wid.0) {
                    w.outstanding.retain(|&id| id != range_id);
                }
                if ShardReport::parse(body).is_ok() {
                    stats.duplicates_discarded += 1;
                } else {
                    stats.corrupt_reports += 1;
                }
            }
        }
    }

    let now = transport.now_ms();
    for (&wid, w) in &workers {
        stats.worker_live_ms += now.saturating_sub(w.connected_at_ms);
        let _ = transport.send(WorkerId(wid), &Frame::drain());
    }
    let reports: Vec<ShardReport> = ranges
        .iter_mut()
        .map(|r| r.report.take().expect("all ranges done"))
        .collect();
    let report = if reports.is_empty() {
        ShardReport::from_spec_outcomes(0, 1, 0, 0, Vec::new())
    } else {
        merge_shards(&reports).map_err(CoordinatorError::Merge)?
    };
    Ok(CoordinatorRun { report, stats })
}

/// Sends one dispatch frame and records the new in-flight copy. A failed
/// send means the worker died between events: it is dropped here and its
/// other in-flight ranges requeue when the transport's `Disconnected`
/// event arrives (sends to an already-dropped worker just fail the same
/// way again, harmlessly).
#[allow(clippy::too_many_arguments)]
fn dispatch_range<T: Transport>(
    range_id: usize,
    wid: WorkerId,
    now: u64,
    cfg: &CoordinatorConfig,
    total_specs: usize,
    n_ranges: usize,
    transport: &mut T,
    ranges: &mut [RangeState],
    workers: &mut BTreeMap<u64, WorkerState>,
    stats: &mut CoordinatorStats,
    in_flight: &mut usize,
) {
    let r = &mut ranges[range_id];
    let d = DispatchSpec {
        range_id,
        start: r.start,
        len: r.len,
        total: total_specs,
        ranges: n_ranges,
    };
    if transport.send(wid, &Frame::dispatch(&d)).is_err() {
        // Worker is gone; leave the range as-is (pending, or hedge-less
        // in-flight). The Disconnected event does the bookkeeping.
        return;
    }
    r.attempts += 1;
    r.status = RangeStatus::InFlight;
    r.copies.push(InFlightCopy {
        worker: wid,
        issued_ms: now,
        deadline_ms: now + cfg.dispatch_timeout_ms,
        hedged: false,
    });
    *in_flight += 1;
    stats.dispatches += 1;
    if let Some(w) = workers.get_mut(&wid.0) {
        w.outstanding.push(range_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{Fault, FaultPlan, InProcFleet};
    use crate::SweepOptions;
    use domino_core::Domino;
    use domino_obs::ObsConfig;
    use scenarios::all_cells_grid;
    use simcore::SimDuration;

    fn tight_config() -> CoordinatorConfig {
        CoordinatorConfig {
            chunk_specs: 4,
            dispatch_timeout_ms: 500,
            backoff_base_ms: 5,
            backoff_max_ms: 20,
            max_attempts: 3,
            straggler_after_ms: 1_000_000,
            worker_wait_ms: 200,
            drain_grace_ms: 100,
            ..Default::default()
        }
    }

    #[test]
    fn empty_grid_completes_without_workers() {
        let specs = [];
        let domino = Domino::with_defaults();
        let opts = SweepOptions::default().threads(1);
        let mut fleet = InProcFleet::new(&specs, &domino, &opts, 0, &FaultPlan::none());
        let run = run_coordinator(0, &mut fleet, &tight_config(), |_| {}).expect("empty sweep");
        assert_eq!(run.report.outcomes.len(), 0);
        assert_eq!(run.report.grid_total, 0);
        assert_eq!(run.stats.dispatches, 0);
    }

    #[test]
    fn no_workers_times_out_with_typed_error() {
        let specs = all_cells_grid(3, SimDuration::from_secs(2));
        let domino = Domino::with_defaults();
        let opts = SweepOptions::default().threads(1);
        let mut fleet = InProcFleet::new(&specs, &domino, &opts, 0, &FaultPlan::none());
        let err = run_coordinator(specs.len(), &mut fleet, &tight_config(), |_| {})
            .expect_err("no fleet");
        assert_eq!(err, CoordinatorError::WorkersLost { pending_ranges: 1 });
    }

    #[test]
    fn min_workers_gate_spreads_work_then_times_out_when_unmet() {
        let specs = all_cells_grid(3, SimDuration::from_secs(2));
        let domino = Domino::with_defaults();
        let opts = SweepOptions::default().threads(1);

        // Met threshold: the gate releases once 3 workers connect, work
        // spreads one range per worker (prefetch 1), and the run merges
        // with exactly one dispatch per range — no retries, no hedges.
        let mut cfg = tight_config();
        cfg.chunk_specs = 1;
        cfg.prefetch = 1;
        cfg.min_workers = 3;
        cfg.worker_wait_ms = 2_000;
        let mut fleet = InProcFleet::new(&specs, &domino, &opts, 3, &FaultPlan::none());
        let run = run_coordinator(specs.len(), &mut fleet, &cfg, |_| {}).expect("gated sweep");
        assert_eq!(run.stats.workers_peak, 3);
        assert_eq!(run.stats.dispatches, specs.len() as u64);

        // Unmet threshold: two connected workers never satisfy
        // min_workers=3, so nothing dispatches and the watchdog fires.
        cfg.worker_wait_ms = 200;
        let mut fleet = InProcFleet::new(&specs, &domino, &opts, 2, &FaultPlan::none());
        let err =
            run_coordinator(specs.len(), &mut fleet, &cfg, |_| {}).expect_err("gate never met");
        assert_eq!(
            err,
            CoordinatorError::WorkersLost {
                pending_ranges: specs.len()
            }
        );
    }

    #[test]
    fn unending_corruption_exhausts_the_attempt_budget() {
        let specs = all_cells_grid(3, SimDuration::from_secs(2));
        let domino = Domino::with_defaults();
        let opts = SweepOptions::default().threads(1);
        let plan = FaultPlan {
            seed: 0,
            faults: vec![Fault::CorruptResult {
                range: 0,
                times: u32::MAX,
            }],
        };
        let mut fleet = InProcFleet::new(&specs, &domino, &opts, 2, &plan);
        let err = run_coordinator(specs.len(), &mut fleet, &tight_config(), |_| {})
            .expect_err("every result corrupted");
        match err {
            CoordinatorError::RangeFailed { range: 0, attempts } => {
                assert_eq!(attempts, 3, "bounded by max_attempts")
            }
            other => panic!("expected RangeFailed, got {other:?}"),
        }
    }

    #[test]
    fn stats_fold_into_coord_metric_families() {
        let stats = CoordinatorStats {
            workers_connected: 4,
            workers_peak: 3,
            worker_deaths: 1,
            dispatches: 9,
            ranges_completed: 6,
            retries: 2,
            straggler_reissues: 1,
            steals: 2,
            duplicates_discarded: 1,
            corrupt_reports: 2,
            worker_live_ms: 1234,
            wall_ms: 500,
        };
        let mut rec = Recorder::new(ObsConfig::full());
        stats.record_into(&mut rec);
        assert_eq!(rec.counter(Counter::CoordDispatches), 9);
        assert_eq!(rec.counter(Counter::CoordRetries), 2);
        assert_eq!(rec.counter(Counter::CoordSteals), 2);
        assert_eq!(rec.counter(Counter::CoordStragglerReissues), 1);
        assert_eq!(rec.counter(Counter::CoordDuplicates), 1);
        assert_eq!(rec.counter(Counter::CoordCorruptReports), 2);
        assert_eq!(rec.counter(Counter::CoordWorkerDeaths), 1);
        assert_eq!(rec.counter(Counter::CoordWorkerLiveMs), 1234);
        assert_eq!(rec.gauge(Gauge::CoordWorkersPeak), 3);
        let snap = rec.snapshot().expect("enabled recorder snapshots");
        let text = snap.encode();
        assert!(text.contains("coord/dispatches\t9"));
        assert!(text.contains("coord/workers_peak"));
        // Encoded stats artifact is stable, line-per-key.
        let encoded = stats.encode();
        assert!(encoded.starts_with("domino-coordinator-stats\tv1\n"));
        assert!(encoded.contains("straggler_reissues\t1\n"));
        // A disabled recorder stays silent.
        let mut off = Recorder::off();
        stats.record_into(&mut off);
        assert!(off.snapshot().is_none());
    }
}
