//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides the slice of proptest the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, range and
//! [`collection::vec`] strategies, and [`any`] for `bool`. Instead of
//! shrinking counterexamples it simply reports the failing case's values
//! via the panic message of the underlying assertion.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases each property runs.
pub const CASES: usize = 96;

/// Deterministic per-test RNG so failures reproduce across runs.
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name keys the stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

pub mod strategy {
    use super::*;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    if start == end {
                        return start;
                    }
                    // Half-open draw plus endpoint promotion keeps the float
                    // case simple; ints use the exact inclusive span.
                    rng.gen_range(start..=end)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    /// Strategy returned by [`super::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen::<u64>() & 1 == 1
        }
    }

    impl Strategy for Any<u8> {
        type Value = u8;
        fn generate(&self, rng: &mut StdRng) -> u8 {
            rng.gen::<u64>() as u8
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut StdRng) -> u64 {
            rng.gen()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));
}

/// Strategy over the "canonical arbitrary" values of `T`.
pub fn any<T>() -> strategy::Any<T> {
    strategy::Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// A size specification for [`vec`]: an exact length or a length range.
    pub trait SizeRange {
        /// Draws a length.
        fn draw(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn draw(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn draw(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing vectors of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.draw(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vector strategy: `vec(elem_strategy, len_range)`.
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
}

/// Property assertion; panics with the stringified condition on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] random cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..$crate::CASES {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::strategy::Strategy;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = super::test_rng("ranges_generate_in_bounds");
        for _ in 0..200 {
            let a = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&a));
            let b = (0u8..=28).generate(&mut rng);
            assert!(b <= 28);
            let c = (-2.5f64..2.5).generate(&mut rng);
            assert!((-2.5..2.5).contains(&c));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = super::test_rng("vec_strategy_respects_len");
        for _ in 0..100 {
            let v = super::collection::vec(1u32..5, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| (1..5).contains(&x)));
        }
    }

    proptest! {
        /// The macro itself must compile and run bodies with bound args.
        #[test]
        fn macro_binds_args(x in 1u64..100, flips in super::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(flips.len() < 8);
            prop_assert_eq!(flips.len(), flips.len());
        }
    }
}
