//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the thin slice of `rand` it actually uses: [`rngs::StdRng`] (here
//! xoshiro256++ rather than ChaCha12 — the workspace only requires
//! determinism and statistical quality, not bit-compatibility with upstream),
//! the [`Rng`]/[`SeedableRng`] traits, and the [`distributions::Standard`]
//! distribution. Draws are reproducible across runs and platforms.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator seedable from fixed-size seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Constructs the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, whitening via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn ensure_nonzero(&mut self) {
            if self.s.iter().all(|&w| w == 0) {
                // The all-zero state is a fixed point of xoshiro; remap it.
                let mut z = 0x9E37_79B9_7F4A_7C15u64;
                for w in &mut self.s {
                    *w = splitmix64(&mut z);
                }
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            let mut rng = StdRng { s };
            rng.ensure_nonzero();
            rng
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            let mut rng = StdRng { s };
            rng.ensure_nonzero();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution per type: uniform over the full integer
    /// range, uniform in `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

use distributions::{Distribution, Standard};

/// Types [`Rng::gen_range`] can draw uniformly. Mirrors rand's
/// `SampleUniform` so that untyped integer literals in range expressions
/// unify with the surrounding expression's type.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_single<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                // Multiply-shift bounded draw (Lemire); bias is negligible for
                // the spans the simulators use and determinism is exact.
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as i128 + off as i128) as $t
            }
            fn sample_single_inclusive<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                rng: &mut R,
            ) -> Self {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit range.
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty gen_range");
                let u: f64 = Standard.sample(rng);
                lo + (hi - lo) * u as $t
            }
            fn sample_single_inclusive<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                rng: &mut R,
            ) -> Self {
                assert!(lo <= hi, "empty gen_range");
                let u: f64 = Standard.sample(rng);
                lo + (hi - lo) * u as $t
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// A range from which [`Rng::gen_range`] can draw uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type from [`Standard`].
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard.sample(self);
        u < p
    }

    /// Draws one value from a distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Consumes the generator into an infinite sampling iterator.
    fn sample_iter<T, D: Distribution<T>>(self, distr: D) -> DistIter<D, Self, T>
    where
        Self: Sized,
    {
        DistIter {
            distr,
            rng: self,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Infinite iterator of draws from a distribution.
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: std::marker::PhantomData<T>,
}

impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let a: Vec<u64> = StdRng::seed_from_u64(7)
            .sample_iter(Standard)
            .take(4)
            .collect();
        let b: Vec<u64> = StdRng::seed_from_u64(7)
            .sample_iter(Standard)
            .take(4)
            .collect();
        assert_eq!(a, b);
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_ne!(a[0], c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&z));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        assert_ne!(a, b);
    }
}
