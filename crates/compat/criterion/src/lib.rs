//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this shim implements the
//! small interface the workspace's benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Each benchmark is auto-calibrated to a target batch time, run for the
//! configured number of samples, and reported as `min / median / max` ns per
//! iteration on stdout — enough to track relative trajectories over PRs.
//!
//! When the `BENCH_JSON` environment variable names a file, each runner
//! additionally merges its results into that file as a JSON object mapping
//! benchmark name → median ns/iter (sorted by name, written when the
//! [`Criterion`] value drops). CI sets it to `BENCH_ci.json` so the perf
//! trajectory is machine-readable per push.

use std::collections::BTreeMap;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` if they prefer.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark harness configuration and runner.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: CriterionConfig,
    /// Medians collected by this runner, flushed to `BENCH_JSON` on drop.
    results: Vec<(String, f64)>,
}

#[derive(Debug, Clone)]
struct CriterionConfig {
    sample_size: usize,
    target_batch: Duration,
}

impl Default for CriterionConfig {
    fn default() -> Self {
        CriterionConfig {
            sample_size: 30,
            target_batch: Duration::from_millis(25),
        }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Calibrate: grow the batch until it runs long enough to time well.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= self.config.target_batch || b.iters >= 1 << 30 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (self.config.target_batch.as_nanos() / b.elapsed.as_nanos().max(1) + 1).min(16)
                    as u64
            };
            b.iters = (b.iters * grow.max(2)).min(1 << 30);
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        per_iter_ns.sort_by(|a, x| a.partial_cmp(x).expect("finite"));
        let min = per_iter_ns[0];
        let med = per_iter_ns[per_iter_ns.len() / 2];
        let max = per_iter_ns[per_iter_ns.len() - 1];
        println!(
            "{name:<44} time: [{} {} {}]  ({} iters/sample, {} samples)",
            fmt_ns(min),
            fmt_ns(med),
            fmt_ns(max),
            b.iters,
            self.config.sample_size
        );
        self.results.push((name.to_string(), med));
        self
    }
}

impl Drop for Criterion {
    /// Merges this runner's medians into the `BENCH_JSON` file, if set.
    /// Groups run sequentially, each with its own `Criterion`, so each drop
    /// re-reads the file and rewrites the union (ours win on name clashes).
    fn drop(&mut self) {
        let Ok(path) = std::env::var("BENCH_JSON") else {
            return;
        };
        if path.is_empty() || self.results.is_empty() {
            return;
        }
        let mut merged: BTreeMap<String, f64> = std::fs::read_to_string(&path)
            .map(|text| parse_bench_json(&text))
            .unwrap_or_default();
        for (name, med) in &self.results {
            merged.insert(name.clone(), *med);
        }
        let mut out = String::from("{\n");
        for (i, (name, med)) in merged.iter().enumerate() {
            let sep = if i + 1 == merged.len() { "" } else { "," };
            out.push_str(&format!("  \"{}\": {med:.2}{sep}\n", escape_json(name)));
        }
        out.push_str("}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion shim: cannot write {path}: {e}");
        }
    }
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parses the shim's own `BENCH_JSON` output (one `"name": median` entry
/// per line). Unknown lines are ignored, so a corrupt file degrades to a
/// fresh start instead of an error.
fn parse_bench_json(text: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.rsplit_once(": ") else {
            continue;
        };
        let key = key
            .trim()
            .trim_matches('"')
            .replace("\\\"", "\"")
            .replace("\\\\", "\\");
        if let Ok(v) = value.trim().parse::<f64>() {
            map.insert(key, v);
        }
    }
    map
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine for the calibrated number of iterations and records
    /// the elapsed wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Caller-timed measurement (mirrors criterion's `iter_custom`): the
    /// routine receives the calibrated iteration count, runs them itself,
    /// and returns the elapsed time it measured. Benches that amortise a
    /// batch of work per iteration use this to report per-unit time (e.g.
    /// per-session cost of a multiplexed batch).
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(self.iters);
    }
}

/// Groups benchmark functions under a single runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            config: CriterionConfig {
                sample_size: 3,
                target_batch: Duration::from_micros(200),
            },
            results: Vec::new(),
        };
        let mut count = 0u64;
        c.bench_function("selftest/add", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        assert!(count > 0);
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].0, "selftest/add");
        assert!(c.results[0].1 > 0.0);
    }

    #[test]
    fn bench_json_round_trips_and_merges() {
        let text = "{\n  \"domino/streaming_step\": 63000.25,\n  \"phy/select_mcs\": 12.50\n}\n";
        let map = parse_bench_json(text);
        assert_eq!(map.len(), 2);
        assert_eq!(map["domino/streaming_step"], 63000.25);
        assert_eq!(map["phy/select_mcs"], 12.5);
        // Garbage degrades to empty, not an error.
        assert!(parse_bench_json("not json at all").is_empty());
        // Escaped names survive.
        let esc = format!("{{\n  \"{}\": 1.00\n}}\n", escape_json("odd\"name\\x"));
        let back = parse_bench_json(&esc);
        assert_eq!(back.keys().next().map(String::as_str), Some("odd\"name\\x"));
    }
}
