//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this shim implements the
//! small interface the workspace's benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Each benchmark is auto-calibrated to a target batch time, run for the
//! configured number of samples, and reported as `min / median / max` ns per
//! iteration on stdout — enough to track relative trajectories over PRs.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` if they prefer.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark harness configuration and runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    target_batch: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30, target_batch: Duration::from_millis(25) }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Calibrate: grow the batch until it runs long enough to time well.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= self.target_batch || b.iters >= 1 << 30 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (self.target_batch.as_nanos() / b.elapsed.as_nanos().max(1) + 1).min(16) as u64
            };
            b.iters = (b.iters * grow.max(2)).min(1 << 30);
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        per_iter_ns.sort_by(|a, x| a.partial_cmp(x).expect("finite"));
        let min = per_iter_ns[0];
        let med = per_iter_ns[per_iter_ns.len() / 2];
        let max = per_iter_ns[per_iter_ns.len() - 1];
        println!(
            "{name:<44} time: [{} {} {}]  ({} iters/sample, {} samples)",
            fmt_ns(min),
            fmt_ns(med),
            fmt_ns(max),
            b.iters,
            self.sample_size
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine for the calibrated number of iterations and records
    /// the elapsed wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Groups benchmark functions under a single runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { sample_size: 3, target_batch: Duration::from_micros(200) };
        let mut count = 0u64;
        c.bench_function("selftest/add", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        assert!(count > 0);
    }
}
