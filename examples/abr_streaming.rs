//! Streaming workload diagnosis: a QUIC/ABR video player riding a cell it
//! shares with scripted traffic UEs, degraded mid-session by a downlink
//! cross-traffic surge and a deep fade. The ABR controller hunts the
//! bitrate ladder and the playback buffer drains into a stall; Domino's
//! streaming causal graph attributes both back to the RAN.
//!
//! ```text
//! cargo run --release --example abr_streaming
//! ```

use std::collections::HashMap;

use domino::abr::AbrConfig;
use domino::core::{abr_graph, ChainStats, Domino, DominoConfig};
use domino::ran::traffic_mix;
use domino::scenarios::{tmobile_fdd_15mhz_quiet, AppSpec, SessionConfig, SessionRun};
use domino::simcore::{SimDuration, SimTime};
use domino::telemetry::Direction;

fn main() {
    // A busy cell: 12 scripted traffic UEs contend for the same PRB budget
    // as the streaming session's experiment UE.
    let mut cell = tmobile_fdd_15mhz_quiet();
    cell.traffic_ues = traffic_mix(12);

    let cfg = SessionConfig {
        duration: SimDuration::from_secs(60),
        seed: 1907,
        ..Default::default()
    };

    let bundle = SessionRun::cell(cell, &cfg)
        .app(AppSpec::Abr(AbrConfig::default()))
        .script(|cell| {
            // A downlink cross-traffic surge squeezes the segment download
            // path, then a deep downlink fade collapses the link rate.
            cell.script_cross_traffic(
                Direction::Downlink,
                SimTime::from_secs(18),
                SimTime::from_secs(30),
                0.95,
            );
            cell.script_sinr(
                Direction::Downlink,
                SimTime::from_secs(42),
                SimTime::from_secs(48),
                -2.0,
            );
        })
        .run();

    // Playback-side view of the damage, straight from the trace.
    let last = bundle.playback.last().expect("playback stats recorded");
    println!("playback summary ({} traffic UEs sharing the cell):", 12);
    println!("  segments fetched       {}", last.segments_fetched);
    println!(
        "  stalls                 {} ({} ms total)",
        last.stall_count, last.total_stall_ms
    );
    println!(
        "  final rung             {} ({:?})",
        last.rung, last.resolution
    );

    // Cross-layer diagnosis over the ABR causal graph.
    let domino = Domino::new(abr_graph(), DominoConfig::default());
    let analysis = domino.analyze(&bundle);

    // Rank (root cause -> playback consequence) attributions by how many
    // windows confirmed the full chain.
    let mut ranked: HashMap<String, usize> = HashMap::new();
    for w in &analysis.windows {
        for chain in &w.chains {
            let root = domino.graph().name(chain.path[0]);
            let leaf = domino.graph().name(*chain.path.last().expect("non-empty"));
            *ranked.entry(format!("{root:<20} --> {leaf}")).or_default() += 1;
        }
    }
    let mut ranked: Vec<(String, usize)> = ranked.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    println!("\nranked root-cause verdicts (windows confirming the chain):");
    if ranked.is_empty() {
        println!("  (no complete chains — healthy session)");
    }
    for (chain, windows) in &ranked {
        println!("  {windows:>3}  {chain}");
    }

    let stats = ChainStats::compute(domino.graph(), &analysis);
    println!("\nroot-cause event rates:");
    for root in domino.graph().roots() {
        let name = domino.graph().name(root);
        let f = stats.cause_frequency_per_min(name);
        if f > 0.0 {
            println!("  {name:<20} {f:.2} events/min");
        }
    }
}
