//! Quickstart: simulate a 5G video-conferencing session, run Domino on the
//! collected cross-layer trace, and print the root-cause report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use domino::core::{render_conditional_table, render_frequency_table, ChainStats, Domino};
use domino::scenarios::{amarisoft, SessionConfig, SessionRun};
use domino::simcore::SimDuration;

fn main() {
    // 1. A two-minute two-party WebRTC call over the Amarisoft private cell
    //    (poor uplink channel, conservative UL MCS — paper §5.1.1).
    let cfg = SessionConfig {
        duration: SimDuration::from_secs(120),
        seed: 7,
        ..Default::default()
    };
    println!("simulating 120 s call over {} ...", amarisoft().name);
    let bundle = SessionRun::cell(amarisoft(), &cfg).run();
    let rates = bundle.event_rates();
    println!(
        "collected {} DCI/min, {} gNB/min, {} packets/min, {} WebRTC samples/min",
        rates.dci_per_min as u64,
        rates.gnb_per_min as u64,
        rates.packets_per_min as u64,
        rates.webrtc_per_min as u64
    );

    // 2. Domino with the paper's default Fig. 9 graph (24 chains),
    //    W = 5 s sliding window, Δt = 0.5 s.
    let domino = Domino::with_defaults();
    let analysis = domino.analyze(&bundle);
    println!("analysed {} windows", analysis.windows.len());

    // 3. Statistics: Fig. 10-style frequencies and the Table 2 matrix.
    let stats = ChainStats::compute(domino.graph(), &analysis);
    println!("\n{}", render_frequency_table(domino.graph(), &stats));
    println!("{}", render_conditional_table(domino.graph(), &stats));

    // 4. Show a few concrete detections.
    let mut shown = 0;
    for w in &analysis.windows {
        for chain in &w.chains {
            let path: Vec<&str> = chain.path.iter().map(|&n| domino.graph().name(n)).collect();
            println!("t={:>7} chain: {}", w.start, path.join(" --> "));
            shown += 1;
            if shown >= 10 {
                return;
            }
        }
    }
}
