//! The lateness trade-off curve on degraded telemetry (ISSUE 10).
//!
//! Sweeps one lateness policy at a time over a grid of chaos-degraded
//! cells — telemetry running behind (clock skew), lossy (drops +
//! duplicates), and partially dark (blackout) — and prints, per policy,
//! the verdict-latency p50/p95 against the late-drop rate and degraded
//! window count. The lateness under test rides a single-point
//! `ScenarioAxis`, so each spec's label records which policy produced it.
//!
//! The shape to look for: tight static bounds answer fast but drop late
//! records on the skewed cells (degraded verdicts); loose static bounds
//! drop nothing but hold every verdict for seconds; the adaptive
//! estimator tracks each stream's observed delay and lands at the
//! fast-AND-clean corner without per-cell tuning.
//!
//! ```text
//! cargo run --release --example lateness_tradeoff
//! ```

use domino::core::Domino;
use domino::obs::HistId;
use domino::scenarios::{amarisoft, mosolabs, AxisPatch, ScenarioAxis, SessionGrid, SessionSpec};
use domino::simcore::{SimDuration, SimTime};
use domino::{
    run_sweep, AnalysisMode, EarlyExit, Lateness, LiveConfig, ObsConfig, SweepOptions,
    TapChaosSpec, TapFault, TapStream,
};

/// The degraded-cell grid for one lateness policy: every cell × three
/// flavours of telemetry damage × the (single-point) lateness axis.
fn grid_for(label: &str, lateness: Lateness) -> Vec<SessionSpec> {
    let skewed = TapChaosSpec::new(0x51E7)
        .fault(TapFault::SkewBehind {
            stream: TapStream::Gnb,
            skew: SimDuration::from_millis(300),
        })
        .fault(TapFault::SkewBehind {
            stream: TapStream::Dci,
            skew: SimDuration::from_millis(150),
        });
    let lossy = TapChaosSpec::new(0x1055)
        .fault(TapFault::Drop {
            stream: TapStream::Gnb,
            pct: 20,
        })
        .fault(TapFault::Duplicate {
            stream: TapStream::Dci,
            pct: 10,
        })
        .fault(TapFault::Delay {
            stream: TapStream::AppLocal,
            pct: 15,
            max_delay: SimDuration::from_millis(800),
        });
    let dark = TapChaosSpec::new(0xDA4C)
        .fault(TapFault::Blackout {
            stream: TapStream::AppRemote,
            from: SimTime::from_secs(5),
            to: SimTime::from_secs(9),
        })
        .fault(TapFault::SkewBehind {
            stream: TapStream::Gnb,
            skew: SimDuration::from_millis(350),
        });
    SessionGrid::new()
        .cells(vec![amarisoft(), mosolabs()])
        .durations([SimDuration::from_secs(15)])
        .axis(
            ScenarioAxis::new("chaos")
                .point("skewed", vec![AxisPatch::TapChaos(Some(skewed))])
                .point("lossy", vec![AxisPatch::TapChaos(Some(lossy))])
                .point("dark", vec![AxisPatch::TapChaos(Some(dark))]),
        )
        .axis(ScenarioAxis::new("lateness").point(label, vec![AxisPatch::Lateness(lateness)]))
        .master_seed(1010)
        .build()
}

fn main() {
    let domino = Domino::with_defaults();
    let points: Vec<(&str, Lateness)> = vec![
        (
            "static-250ms",
            Lateness::Static(SimDuration::from_millis(250)),
        ),
        ("static-1s", Lateness::Static(SimDuration::from_secs(1))),
        ("static-2s", Lateness::Static(SimDuration::from_secs(2))),
        ("static-5s", Lateness::Static(SimDuration::from_secs(5))),
        (
            "adaptive-q99",
            Lateness::Adaptive {
                target_quantile: 0.99,
                floor: SimDuration::from_millis(250),
                ceil: SimDuration::from_secs(5),
            },
        ),
    ];

    println!("lateness trade-off on degraded telemetry (2 cells x skewed/lossy/dark, 15 s)");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "lateness", "verdict p50", "verdict p95", "late drops", "drop rate", "degraded"
    );
    for (label, lateness) in points {
        let specs = grid_for(label, lateness);
        let opts = SweepOptions {
            analysis: AnalysisMode::Live,
            live: LiveConfig {
                lateness,
                early_exit: EarlyExit::Never,
            },
            obs: ObsConfig::full(),
            ..Default::default()
        };
        let report = run_sweep(&specs, &domino, &opts);
        let m = report.metrics.as_ref().expect("obs enabled");
        let (mut seen, mut dropped, mut degraded) = (0usize, 0usize, 0usize);
        for o in &report.outcomes {
            if let Some(l) = &o.live {
                seen += l.records_seen;
                dropped += l.late_records_dropped;
                degraded += l.degraded_windows;
            }
        }
        println!(
            "{:<14} {:>9} ms {:>9} ms {:>12} {:>9.3}% {:>10}",
            label,
            m.quantile(HistId::LiveVerdictLatencyMs, 0.50) as u64,
            m.quantile(HistId::LiveVerdictLatencyMs, 0.95) as u64,
            dropped,
            100.0 * dropped as f64 / seen.max(1) as f64,
            degraded
        );
    }
    println!();
    println!(
        "reading the curve: static-250ms answers fastest but sheds skewed records \
         (degraded verdicts); static-5s is clean but slow; adaptive-q99 should sit \
         near 250 ms latency at (close to) zero drops."
    );
}
