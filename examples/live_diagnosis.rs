//! In-session diagnosis: the `domino-live` pipeline taps the session engine
//! and attributes degradations *while the call is running* — each verdict is
//! printed from inside the simulation, stamped with the session time at
//! which an operator would have seen it (window end + watermark lateness),
//! not at the end of a post-hoc pass.
//!
//! Two runs over the same degrading call (an RRC outage at 20 s, then a deep
//! uplink fade at 40 s):
//!
//! 1. **Full watch** — every window's verdict, live, plus the pipeline's
//!    constant-memory accounting (peak retained records vs. session total).
//! 2. **Triage with early exit** — the same call watched under
//!    `EarlyExit::AfterChains(3)`: the session is aborted the moment the
//!    diagnosis is in, which is how a fleet-scale diagnoser frees capacity.
//!
//! ```text
//! cargo run --release --example live_diagnosis
//! ```

use domino::live::{EarlyExit, LiveConfig, LivePipeline};
use domino::scenarios::{tmobile_fdd_15mhz_quiet, SessionConfig, SessionRun};
use domino::simcore::{SimDuration, SimTime};
use domino::telemetry::{Direction, Lateness};

fn session_cfg() -> SessionConfig {
    SessionConfig {
        duration: SimDuration::from_secs(60),
        seed: 31,
        ..Default::default()
    }
}

fn degrading_call(cell: &mut domino::ran::CellSim) {
    cell.script_rrc_release(SimTime::from_secs(20));
    cell.script_sinr(
        Direction::Uplink,
        SimTime::from_secs(40),
        SimTime::from_secs(43),
        -2.0,
    );
}

fn main() {
    let graph = domino::core::default_graph();

    // ---- Run 1: watch the whole call, verdict by verdict -----------------
    let live_cfg = LiveConfig {
        lateness: Lateness::Static(SimDuration::from_secs(2)),
        early_exit: EarlyExit::Never,
    };
    let mut pipe = LivePipeline::with_defaults(live_cfg).expect("default config is aligned");
    {
        let graph = graph.clone();
        let mut last: Option<String> = None;
        pipe.set_verdict_hook(move |v| {
            let mut lines: Vec<String> = v
                .chains
                .iter()
                .map(|c| {
                    c.path
                        .iter()
                        .map(|&n| graph.name(n))
                        .collect::<Vec<_>>()
                        .join(" --> ")
                })
                .chain(
                    v.unknown_consequences
                        .iter()
                        .map(|&u| format!("{} (cause unknown)", graph.name(u))),
                )
                .collect();
            if lines.is_empty() {
                return;
            }
            lines.sort();
            lines.dedup();
            let report = lines.join("; ");
            // Only print when the diagnosis changes (operators hate spam).
            if last.as_deref() != Some(&report) {
                println!(
                    "[seen {:>6} | window {:>6}] {report}",
                    v.emitted_at, v.window_start
                );
                last = Some(report);
            }
        });
    }

    println!("== live diagnosis feed (lateness bound: 2 s) ==");
    let bundle = SessionRun::cell(tmobile_fdd_15mhz_quiet(), &session_cfg())
        .script(degrading_call)
        .tap(&mut pipe)
        .run();

    let stats = pipe.stats();
    let analysis = pipe.take_analysis(bundle.meta.duration);
    println!("\n== session summary ==");
    println!("  windows analysed      {}", stats.windows_emitted);
    println!("  records tapped        {}", stats.records_seen);
    println!(
        "  peak retained records {} ({:.1}% of the trace — O(window + lateness), not O(session))",
        stats.peak_retained_records,
        100.0 * stats.peak_retained_records as f64 / bundle.total_records() as f64
    );
    println!(
        "  late drops / deliveries {} / {}",
        stats.late_records_dropped, stats.late_deliveries
    );
    let chain_stats = domino::core::ChainStats::compute(&graph, &analysis);
    for root in graph.roots() {
        let name = graph.name(root);
        let f = chain_stats.cause_frequency_per_min(name);
        if f > 0.0 {
            println!("  {name:<22} {f:.2} events/min");
        }
    }

    // ---- Run 2: triage mode — stop simulating once the verdict is in ----
    let mut triage = LivePipeline::with_defaults(LiveConfig {
        lateness: Lateness::Static(SimDuration::from_secs(2)),
        early_exit: EarlyExit::AfterChains(3),
    })
    .expect("default config is aligned");
    let truncated = SessionRun::cell(tmobile_fdd_15mhz_quiet(), &session_cfg())
        .script(degrading_call)
        .tap(&mut triage)
        .run();
    let tstats = triage.stats();
    println!("\n== triage run (early exit after 3 confirmed chains) ==");
    println!(
        "  stopped early: {} — simulated {:.1} s of {:.0} s (saved {:.0}% of the session)",
        tstats.early_exited,
        truncated.horizon().as_secs_f64(),
        session_cfg().duration.as_secs_f64(),
        100.0 * (1.0 - truncated.horizon().as_secs_f64() / session_cfg().duration.as_secs_f64())
    );
    for v in triage
        .drain_verdicts()
        .iter()
        .filter(|v| !v.chains.is_empty())
    {
        for c in &v.chains {
            println!(
                "  [seen {:>6}] {}",
                v.emitted_at,
                c.path
                    .iter()
                    .map(|&n| graph.name(n))
                    .collect::<Vec<_>>()
                    .join(" --> ")
            );
        }
    }
}
