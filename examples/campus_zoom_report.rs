//! Campus-wide Zoom QoS report (paper §2.2): generate the synthetic
//! organisation-wide dataset and print the per-access-network jitter and
//! loss comparison behind Figs. 5–6.
//!
//! ```text
//! cargo run --release --example campus_zoom_report
//! ```

use domino::scenarios::{generate_campus_dataset, AccessType, CampusDatasetSize};
use domino::telemetry::Cdf;

fn main() {
    let data = generate_campus_dataset(2026, CampusDatasetSize::large());
    println!("campus dataset: {} participant-minutes", data.len());

    println!(
        "\n{:<10} {:>8} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "access",
        "minutes",
        "jit p50[ms]",
        "jit p90[ms]",
        "jit p99[ms]",
        "loss>0 frac",
        "loss p99[%]"
    );
    for access in [AccessType::Wired, AccessType::Wifi, AccessType::Cellular] {
        let subset: Vec<_> = data.iter().filter(|r| r.access == access).collect();
        let jitter = Cdf::from_samples(subset.iter().map(|r| r.outbound_jitter_ms).collect());
        let loss = Cdf::from_samples(subset.iter().map(|r| r.outbound_loss_pct).collect());
        println!(
            "{:<10} {:>8} {:>12.2} {:>12.2} {:>12.2} {:>14.3} {:>14.2}",
            access.label(),
            subset.len(),
            jitter.median().unwrap_or(0.0),
            jitter.quantile(0.9).unwrap_or(0.0),
            jitter.quantile(0.99).unwrap_or(0.0),
            1.0 - loss.fraction_at_or_below(0.0),
            loss.quantile(0.99).unwrap_or(0.0),
        );
    }

    println!(
        "\nFinding (paper §2.2): cellular networks consistently show higher\n\
         network jitter and packet loss than wired and Wi-Fi networks."
    );
}
