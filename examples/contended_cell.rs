//! Contended cell: 48 UEs on one 20 MHz TDD carrier — two diagnosed WebRTC
//! call pairs plus 46 scripted cross-traffic UEs — with a neighbor-load
//! spike mid-call. Domino diagnoses each pair independently from its own
//! viewpoint on the shared control channel and attributes the mid-call
//! degradation to scheduler starvation (cross traffic → delay → quality).
//!
//! ```text
//! cargo run --release --example contended_cell
//! ```

use domino::core::{ChainStats, Domino};
use domino::ran::traffic_mix;
use domino::scenarios::{amarisoft, SessionConfig, SharedCellDriver};
use domino::simcore::{SimDuration, SimTime};
use domino::telemetry::Direction;

fn main() {
    // 1. One Amarisoft cell with 46 scripted traffic UEs camped on it —
    //    streaming, bursty, and idle profiles from the deterministic mix.
    let mut cell = amarisoft();
    cell.traffic_ues = traffic_mix(46);

    let cfg = SessionConfig {
        duration: SimDuration::from_secs(60),
        seed: 4242,
        ..Default::default()
    };

    // 2. Two diagnosed RTC pairs share the cell with the scripted crowd:
    //    48 UEs total contending for the same 51-PRB budget. A neighbor
    //    load spike (an unmodelled heavy user, e.g. a handover burst)
    //    saturates the downlink between t=25 s and t=35 s.
    let driver = SharedCellDriver::new(cell, &cfg, 2, |cell| {
        cell.script_cross_traffic(
            Direction::Downlink,
            SimTime::from_secs(25),
            SimTime::from_secs(35),
            0.9,
        );
    });
    println!(
        "simulating 60 s: 2 diagnosed pairs + {} scripted traffic UEs on one cell ...",
        driver.n_traffic_ues()
    );
    let bundles = driver.run();

    // 3. Diagnose each pair from its own bundle: same control channel, its
    //    own packets/app stats, `is_target_ue` stamped per viewpoint.
    let domino = Domino::with_defaults();
    for (pair, bundle) in bundles.iter().enumerate() {
        let analysis = domino.analyze(bundle);
        let stats = ChainStats::compute(domino.graph(), &analysis);

        // Windows whose causal chain starts at cross traffic = scheduler
        // starvation verdicts; compare inside vs. outside the spike.
        let mut starved_in_spike = 0usize;
        let mut starved_outside = 0usize;
        let mut windows_with_chains = 0usize;
        for w in &analysis.windows {
            let starved = w
                .chains
                .iter()
                .any(|c| domino.graph().name(c.cause).contains("cross_traffic"));
            if !w.chains.is_empty() {
                windows_with_chains += 1;
            }
            if starved {
                let in_spike =
                    w.start >= SimTime::from_secs(23) && w.start <= SimTime::from_secs(35);
                if in_spike {
                    starved_in_spike += 1;
                } else {
                    starved_outside += 1;
                }
            }
        }

        let own_dci = bundle.dci.iter().filter(|d| d.is_target_ue).count();
        println!(
            "\npair {pair}: {} packets, {} DCI seen ({} own), {} gNB records",
            bundle.packets.len(),
            bundle.dci.len(),
            own_dci,
            bundle.gnb.len()
        );
        println!(
            "  {} windows with causal chains; {} cross-traffic (starvation) verdicts \
             during the spike, {} elsewhere",
            windows_with_chains, starved_in_spike, starved_outside
        );
        println!(
            "  verdict: {}",
            if starved_in_spike > 0 {
                "mid-call degradation attributed to scheduler starvation \
                 (cross traffic from the other 47 UEs)"
            } else {
                "no starvation chains found — raise the spike or UE count"
            }
        );

        // Top-3 chain frequencies for this pair.
        let mut freq: Vec<(usize, String)> = stats
            .chain_windows
            .iter()
            .map(|((cause, cons), &n)| (n, format!("{cause} --> {cons}")))
            .collect();
        freq.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (n, label) in freq.iter().take(3) {
            println!("  {n:>4} windows: {label}");
        }
    }
}
