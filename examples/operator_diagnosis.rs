//! Operator workflow: near-real-time diagnosis of a degrading call
//! (paper §1: "network operators can provide [trace data] on a continuous,
//! near real-time basis").
//!
//! Simulates a call that degrades mid-way through an RRC outage plus a deep
//! uplink fade, then walks the trace window-by-window like a live pipeline,
//! printing a diagnosis the moment each degradation is attributed.
//!
//! ```text
//! cargo run --release --example operator_diagnosis
//! ```

use domino::core::{ChainStats, Domino};
use domino::scenarios::{tmobile_fdd_15mhz_quiet, SessionConfig, SessionRun};
use domino::simcore::{SimDuration, SimTime};
use domino::telemetry::Direction;

fn main() {
    let cfg = SessionConfig {
        duration: SimDuration::from_secs(60),
        seed: 31,
        ..Default::default()
    };
    let bundle = SessionRun::cell(tmobile_fdd_15mhz_quiet(), &cfg)
        .script(|cell| {
            // Two incidents an operator would want attributed:
            cell.script_rrc_release(SimTime::from_secs(20));
            cell.script_sinr(
                Direction::Uplink,
                SimTime::from_secs(40),
                SimTime::from_secs(43),
                -2.0,
            );
        })
        .run();

    let domino = Domino::with_defaults();
    let analysis = domino.analyze(&bundle);

    println!("live diagnosis feed:");
    let mut last_report: Option<String> = None;
    for w in &analysis.windows {
        let mut lines: Vec<String> = Vec::new();
        for chain in &w.chains {
            let path: Vec<&str> = chain.path.iter().map(|&n| domino.graph().name(n)).collect();
            lines.push(path.join(" --> "));
        }
        for &u in &w.unknown_consequences {
            lines.push(format!("{} (cause unknown)", domino.graph().name(u)));
        }
        if lines.is_empty() {
            continue;
        }
        lines.sort();
        lines.dedup();
        let report = lines.join("; ");
        // Only print when the diagnosis changes (operators hate spam).
        if last_report.as_deref() != Some(&report) {
            println!("[t={:>6}] {report}", w.start);
            last_report = Some(report);
        }
    }

    let stats = ChainStats::compute(domino.graph(), &analysis);
    println!("\nsession summary:");
    for root in domino.graph().roots() {
        let name = domino.graph().name(root);
        let f = stats.cause_frequency_per_min(name);
        if f > 0.0 {
            println!("  {name:<20} {f:.2} events/min");
        }
    }
}
