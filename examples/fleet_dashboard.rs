//! Fleet observability dashboard: run 16 concurrent live-diagnosed calls
//! through the multiplexed sweep engine with the `domino-obs` recorder on,
//! then render the merged [`MetricsSnapshot`] as a plain-text dashboard —
//! verdict-latency percentiles, late-drop rate, RAN utilization, phase
//! wall times, pipeline-pool recycling, and arena footprint.
//!
//! The same snapshot powering this dashboard is deterministic in its `Sim`
//! section: re-running the fleet at any thread count or multiplex width
//! reproduces those lines byte-for-byte (`tests/obs_invisibility.rs`).
//!
//! ```text
//! cargo run --release --example fleet_dashboard
//! ```

use std::time::Instant;

use domino::obs::{Counter, FGauge, Gauge, HistId, MetricsSnapshot, SpanId};
use domino::scenarios::{all_cells, ScriptAction, SessionConfig};
use domino::simcore::{SimDuration, SimTime};
use domino::telemetry::Direction;
use domino::{
    run_sweep, AnalysisMode, Domino, EarlyExit, ExecutionMode, Lateness, LiveConfig, ObsConfig,
    SessionSpec, SweepOptions,
};

const CALLS: usize = 16;

/// Same fleet shape as `multiplexed_live`: 16 calls over the Table 1
/// cells, every third carrying a downlink cross-traffic surge and every
/// fifth an RRC release, so the dashboard shows a mixed verdict population.
fn fleet() -> Vec<SessionSpec> {
    let cells = all_cells();
    (0..CALLS)
        .map(|i| {
            let mut spec = SessionSpec::cell(
                cells[i % cells.len()].clone(),
                SessionConfig {
                    duration: SimDuration::from_secs(35),
                    seed: 4_100 + i as u64,
                    ..Default::default()
                },
            );
            if i % 3 == 1 {
                spec = spec.with_script(ScriptAction::CrossTraffic {
                    dir: Direction::Downlink,
                    from: SimTime::from_secs(8),
                    to: SimTime::from_secs(14),
                    prb_fraction: 0.96,
                });
            }
            if i % 5 == 2 {
                spec = spec.with_script(ScriptAction::RrcRelease {
                    at: SimTime::from_secs(18),
                });
            }
            spec
        })
        .collect()
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

fn span_line(m: &MetricsSnapshot, id: SpanId, label: &str) {
    let s = m.span(id);
    // Wall clock is read on every call here (ObsConfig::full()), so
    // wall_ns is exact, not an extrapolation.
    let per_call = if s.calls == 0 {
        0.0
    } else {
        s.wall_ns as f64 / s.calls as f64
    };
    println!(
        "  {label:<14} {:>10} calls  {:>9.1} ms total  {:>7.0} ns/call",
        s.calls,
        s.wall_ns as f64 / 1e6,
        per_call
    );
}

fn main() {
    let specs = fleet();
    let domino = Domino::with_defaults();
    let opts = SweepOptions::default()
        .threads(2)
        .mode(ExecutionMode::Multiplexed { width: 8 })
        .analysis(AnalysisMode::Live)
        .live(LiveConfig {
            lateness: Lateness::Static(SimDuration::from_secs(1)),
            early_exit: EarlyExit::StableFor(6),
        })
        // `full()` reads the wall clock on every span entry so the phase
        // table below is exact; production sweeps would use `on()`.
        .obs(ObsConfig::full());

    let wall = Instant::now();
    let report = run_sweep(&specs, &domino, &opts);
    let elapsed = wall.elapsed();
    let m = report.metrics.expect("obs was enabled");

    let sessions = m.counter(Counter::EngineSessions);
    let sim_secs = m.counter(Counter::EngineSimTimeUs) as f64 / 1e6;

    println!("== fleet dashboard: {CALLS} live calls, mux width 8, 2 workers ==");
    println!();
    println!("-- fleet --");
    println!("  sessions               {sessions}");
    println!(
        "  early exits            {} ({:.0}% of fleet)",
        m.counter(Counter::EngineEarlyExits),
        pct(m.counter(Counter::EngineEarlyExits), sessions)
    );
    println!("  simulated time         {sim_secs:.1} s");
    println!(
        "  wall time              {:.2} s  ({:.1} sessions/s, {:.0}x realtime)",
        elapsed.as_secs_f64(),
        sessions as f64 / elapsed.as_secs_f64(),
        sim_secs / elapsed.as_secs_f64()
    );
    println!();

    println!("-- verdict latency (sim ms past window close + lateness) --");
    let lat = m.hist(HistId::LiveVerdictLatencyMs);
    println!("  verdicts               {}", lat.count);
    println!(
        "  p50 / p95 / p99        {:.0} / {:.0} / {:.0} ms",
        m.quantile(HistId::LiveVerdictLatencyMs, 0.50),
        m.quantile(HistId::LiveVerdictLatencyMs, 0.95),
        m.quantile(HistId::LiveVerdictLatencyMs, 0.99)
    );
    let seen = m.counter(Counter::LiveRecordsSeen);
    println!(
        "  late drops             {} of {} records ({:.3}%)",
        m.counter(Counter::LiveLateDrops),
        seen,
        pct(m.counter(Counter::LiveLateDrops), seen)
    );
    println!(
        "  late deliveries        {}",
        m.counter(Counter::LiveLateDeliveries)
    );
    println!();

    println!("-- radio --");
    let (util_peak, _) = m.fgauge(FGauge::RanPrbUtilPeak);
    let util = m.hist(HistId::RanPrbUtilPct);
    let mean_util = if util.count == 0 {
        0.0
    } else {
        util.sum as f64 / util.count as f64
    };
    println!(
        "  PRB util mean/peak     {mean_util:.1}% / {:.0}%",
        util_peak * 100.0
    );
    println!(
        "  HARQ retransmissions   {}",
        m.counter(Counter::RanHarqRetx)
    );
    let q = m.hist(HistId::RanRlcQueueBytes);
    println!(
        "  RLC queue p95          {:.0} bytes",
        m.quantile(HistId::RanRlcQueueBytes, 0.95)
    );
    println!("  RLC queue max          {} bytes", q.max);
    println!(
        "  packet loss            {} of {} ({:.4}%)",
        m.counter(Counter::NetLost),
        m.counter(Counter::NetPackets),
        pct(m.counter(Counter::NetLost), m.counter(Counter::NetPackets))
    );
    println!(
        "  pacer backlog p95      {:.0} packets",
        m.quantile(HistId::RtcPacerBacklog, 0.95)
    );
    println!();

    println!("-- engine phases (wall) --");
    span_line(&m, SpanId::BeginTick, "begin_tick");
    span_line(&m, SpanId::RouteDrain, "route_drain");
    span_line(&m, SpanId::EndTick, "end_tick");
    println!();

    println!("-- pool & memory --");
    println!(
        "  pipelines              {} created, {} reused, {} evicted",
        m.counter(Counter::PoolCreated),
        m.counter(Counter::PoolReused),
        m.counter(Counter::PoolEvicted)
    );
    let (footprint, _) = m.gauge(Gauge::ArenaFootprint);
    println!("  arena footprint peak   {footprint} retained elements");
    let (in_flight, _) = m.gauge(Gauge::MuxInFlightPeak);
    println!("  in-flight peak         {in_flight} concurrent calls/worker");
    let (allocs_per_tick, _) = m.fgauge(FGauge::AllocsPerTickPeak);
    if allocs_per_tick.is_finite() {
        println!("  allocs/tick peak       {allocs_per_tick:.4}");
    } else {
        println!("  allocs/tick peak       n/a (counting allocator not installed)");
    }
}
