//! Shard-and-merge sweep driver: run a fixed demo grid as N shards on
//! (potentially) N machines, write one plain-text shard report per shard,
//! then merge the files into the whole-grid report.
//!
//! The merged report is byte-identical to running the grid as a single
//! shard on one machine — at any shard count and any per-shard thread
//! count. CI exercises exactly that:
//!
//! ```sh
//! # one machine
//! cargo run --release --example sharded_sweep -- run --shards 1 --shard 0 \
//!     --threads 2 --out single.txt
//! # three "machines"
//! for i in 0 1 2; do
//!     cargo run --release --example sharded_sweep -- run --shards 3 \
//!         --shard $i --threads 1 --out shard$i.txt
//! done
//! cargo run --release --example sharded_sweep -- merge --out merged.txt \
//!     shard0.txt shard1.txt shard2.txt
//! diff single.txt merged.txt        # byte-for-byte
//! ```

use std::process::ExitCode;
use std::sync::{Arc, Mutex};

use domino::obs::MetricsSnapshot;
use domino::scenarios::{all_cells, AxisPatch, ScenarioAxis};
use domino::simcore::SimDuration;
use domino::sweep::{
    merge_shards, run_coordinator, run_shard_with_metrics, run_worker, CoordinatorConfig,
    ShardPlan, ShardReport, TcpLink, TcpTransport, WorkerExit, WorkerFaults,
};
use domino::{
    AnalysisMode, Domino, ExecutionMode, ObsConfig, SessionGrid, SessionSpec, SweepOptions,
};

/// The demo grid every invocation agrees on: the four Table 1 cells × a
/// proactive-grant scenario axis, 20 s per session. Eight specs — small
/// enough for CI, wide enough that every shard carries several cells and
/// most specs contribute non-empty chain statistics to the merge.
fn demo_grid() -> Vec<SessionSpec> {
    SessionGrid::new()
        .cells(all_cells())
        .durations([SimDuration::from_secs(20)])
        .axis(ScenarioAxis::toggle(
            "grants",
            "on",
            "off",
            vec![],
            vec![AxisPatch::ProactiveGrant(None)],
        ))
        .master_seed(42)
        .build()
}

/// The shared-cell grid (`--grid shared`): two private cells × a UE-count
/// axis over the scripted traffic population. Exercises the SoA slot loop
/// at 0/8/32 cohabiting UEs; CI byte-diffs this grid at 1-vs-3 shards and
/// mux width 1-vs-8, so the many-UE path carries the same determinism
/// contract as the empty-cell path.
fn shared_grid() -> Vec<SessionSpec> {
    use domino::ran::traffic_mix;
    use domino::scenarios::{amarisoft, mosolabs};
    SessionGrid::new()
        .cells(vec![amarisoft(), mosolabs()])
        .durations([SimDuration::from_secs(15)])
        .axis(ScenarioAxis::values("ues", [0usize, 8, 32], |&n| {
            vec![AxisPatch::TrafficUes(traffic_mix(n))]
        }))
        .master_seed(77)
        .build()
}

/// The ABR streaming grid (`--grid abr`): one cell, an `AppSpec::Abr` base
/// spec expanded over `segment duration × ladder × buffer target`. Eight
/// playback-driven sessions; CI byte-diffs this grid at 1-vs-3 shards and
/// mux width 1-vs-8, extending the determinism contract to the streaming
/// workload.
fn abr_grid() -> Vec<SessionSpec> {
    use domino::abr::{default_ladder, AbrConfig};
    use domino::scenarios::{amarisoft, expand_product, ScriptAction, SeedPolicy, SessionConfig};
    use domino::simcore::SimTime;
    use domino::telemetry::Direction;
    let base = SessionSpec::cell(
        amarisoft(),
        SessionConfig {
            duration: SimDuration::from_secs(15),
            seed: 7,
            ..Default::default()
        },
    )
    .abr(AbrConfig::default())
    .with_script(ScriptAction::CrossTraffic {
        dir: Direction::Downlink,
        from: SimTime::from_secs(3),
        to: SimTime::from_secs(9),
        prb_fraction: 0.97,
    });
    let axes = [
        ScenarioAxis::values("segment", [1u64, 2], |&s| {
            vec![AxisPatch::AbrSegmentDuration(SimDuration::from_secs(s))]
        }),
        ScenarioAxis::new("ladder")
            .point("full", vec![AxisPatch::AbrLadder(default_ladder())])
            .point(
                "low3",
                vec![AxisPatch::AbrLadder(default_ladder()[..3].to_vec())],
            ),
        ScenarioAxis::values("buffer", [4u64, 8], |&s| {
            vec![AxisPatch::AbrBufferTarget(SimDuration::from_secs(s))]
        }),
    ];
    expand_product(&base, &axes, SeedPolicy::Derived(1907))
}

/// The degraded-telemetry grid (`--grid chaos`): two cells × a chaos axis
/// (clean, a lossy tap, a dark tap) × a lateness axis (static 2 s vs the
/// adaptive quantile bound), analysed live. Every fault is seeded from the
/// spec, so the grid carries the full determinism contract: CI byte-diffs
/// the merged report *and* the obs metrics (which count every injected
/// drop/duplicate/delay/skew/blackout) at 1-vs-3 shards and mux width
/// 1-vs-8, then asserts the counters are nonzero — injected chaos must be
/// observable, not just survivable.
fn chaos_grid() -> Vec<SessionSpec> {
    use domino::scenarios::{amarisoft, mosolabs};
    use domino::simcore::SimTime;
    use domino::{Lateness, TapChaosSpec, TapFault, TapStream};
    let lossy = TapChaosSpec::new(0xD06E)
        .fault(TapFault::Drop {
            stream: TapStream::Gnb,
            pct: 20,
        })
        .fault(TapFault::Duplicate {
            stream: TapStream::Dci,
            pct: 10,
        })
        .fault(TapFault::Delay {
            stream: TapStream::AppLocal,
            pct: 15,
            max_delay: SimDuration::from_millis(800),
        });
    let dark = TapChaosSpec::new(0xDA4C)
        .fault(TapFault::Blackout {
            stream: TapStream::AppRemote,
            from: SimTime::from_secs(4),
            to: SimTime::from_secs(7),
        })
        .fault(TapFault::SkewBehind {
            stream: TapStream::Gnb,
            skew: SimDuration::from_millis(350),
        });
    SessionGrid::new()
        .cells(vec![amarisoft(), mosolabs()])
        .durations([SimDuration::from_secs(12)])
        .axis(
            ScenarioAxis::new("chaos")
                .point("clean", vec![])
                .point("lossy", vec![AxisPatch::TapChaos(Some(lossy))])
                .point("dark", vec![AxisPatch::TapChaos(Some(dark))]),
        )
        .axis(
            ScenarioAxis::new("lateness")
                .point(
                    "static2s",
                    vec![AxisPatch::Lateness(Lateness::Static(
                        SimDuration::from_secs(2),
                    ))],
                )
                .point(
                    "adaptive",
                    vec![AxisPatch::Lateness(Lateness::Adaptive {
                        target_quantile: 0.99,
                        floor: SimDuration::from_millis(250),
                        ceil: SimDuration::from_secs(5),
                    })],
                ),
        )
        .master_seed(909)
        .build()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sharded_sweep run [--grid demo|shared|abr|chaos] [--shards N] [--shard I] [--threads T] \
         [--mux-width W] [--obs] --out FILE\n  sharded_sweep merge --out FILE \
         <shard-report-files...>\n  sharded_sweep coordinator [--grid G] [--workers N] [--chunk C] \
         [--threads T] [--mux-width W] [--chaos kill-retry] [--stats FILE] --out FILE\n  \
         sharded_sweep worker --connect HOST:PORT [--grid G] [--threads T] [--mux-width W] \
         [--exit-after-specs N] [--corrupt-first-result]\n\nWith --obs, `run` also writes the \
         deterministic metrics section to FILE.metrics, and `merge` folds any INPUT.metrics files \
         into OUT.metrics.\n`coordinator` serves the grid to worker subprocesses over TCP and \
         writes the merged report (byte-identical to a single-machine run) to --out; \
         `--chaos kill-retry` spawns one worker that crashes mid-range and one that corrupts its \
         first report.\n`worker` connects to a coordinator and serves dispatches until drained."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else {
        return usage();
    };

    let mut grid = "demo".to_string();
    let mut shards = 1usize;
    let mut shard = 0usize;
    let mut threads = 0usize;
    let mut mux_width = 1usize;
    let mut obs = false;
    let mut out: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut workers = 3usize;
    let mut chunk = 2usize;
    let mut chaos: Option<String> = None;
    let mut stats_out: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut exit_after_specs: Option<usize> = None;
    let mut corrupt_first_result = false;

    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Option<String> {
            let v = it.next();
            if v.is_none() {
                eprintln!("{name} needs a value");
            }
            v.cloned()
        };
        match arg.as_str() {
            "--grid" => match take("--grid") {
                Some(v) if ["demo", "shared", "abr", "chaos"].contains(&v.as_str()) => grid = v,
                _ => return usage(),
            },
            "--shards" => match take("--shards").and_then(|v| v.parse().ok()) {
                Some(v) => shards = v,
                None => return usage(),
            },
            "--shard" => match take("--shard").and_then(|v| v.parse().ok()) {
                Some(v) => shard = v,
                None => return usage(),
            },
            "--threads" => match take("--threads").and_then(|v| v.parse().ok()) {
                Some(v) => threads = v,
                None => return usage(),
            },
            "--mux-width" => match take("--mux-width").and_then(|v| v.parse().ok()) {
                Some(v) => mux_width = v,
                None => return usage(),
            },
            "--obs" => obs = true,
            "--out" => match take("--out") {
                Some(v) => out = Some(v),
                None => return usage(),
            },
            "--workers" => match take("--workers").and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => workers = v,
                _ => return usage(),
            },
            "--chunk" => match take("--chunk").and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => chunk = v,
                _ => return usage(),
            },
            "--chaos" => match take("--chaos") {
                Some(v) if v == "kill-retry" => chaos = Some(v),
                _ => return usage(),
            },
            "--stats" => match take("--stats") {
                Some(v) => stats_out = Some(v),
                None => return usage(),
            },
            "--connect" => match take("--connect") {
                Some(v) => connect = Some(v),
                None => return usage(),
            },
            "--exit-after-specs" => match take("--exit-after-specs").and_then(|v| v.parse().ok()) {
                Some(v) => exit_after_specs = Some(v),
                None => return usage(),
            },
            "--corrupt-first-result" => corrupt_first_result = true,
            other if other.starts_with("--") || mode != "merge" => {
                eprintln!("unknown argument {other:?}");
                return usage();
            }
            other => inputs.push(other.to_string()),
        }
    }
    if mode != "worker" && out.is_none() {
        return usage();
    }
    let out = out.unwrap_or_default();

    match mode.as_str() {
        "run" => {
            if shard >= shards {
                eprintln!("--shard {shard} out of range for --shards {shards}");
                return usage();
            }
            let specs = match grid.as_str() {
                "shared" => shared_grid(),
                "abr" => abr_grid(),
                "chaos" => chaos_grid(),
                _ => demo_grid(),
            };
            let plan = ShardPlan::new(specs.len(), shards);
            let my = plan.shard(shard);
            eprintln!(
                "[sharded_sweep] shard {}/{} runs specs {:?} of {} on {} thread(s)",
                my.index,
                my.count,
                my.range,
                specs.len(),
                if threads == 0 {
                    "all".to_string()
                } else {
                    threads.to_string()
                }
            );
            let domino = Domino::with_defaults();
            // --mux-width W > 1 interleaves W sessions per worker through
            // one shared calendar queue/arena; the report is byte-identical
            // to the per-worker driver's — CI diffs width 1 vs width 8.
            let opts = SweepOptions::default()
                .threads(threads)
                .mode(if mux_width > 1 {
                    ExecutionMode::Multiplexed { width: mux_width }
                } else {
                    ExecutionMode::PerWorker
                })
                .obs(if obs {
                    ObsConfig::full()
                } else {
                    ObsConfig::default()
                });
            // The chaos grid's fault scripts ride the live tap, so it runs
            // in live analysis mode; the other grids keep the default.
            let opts = if grid == "chaos" {
                opts.analysis(AnalysisMode::Live)
            } else {
                opts
            };
            let (report, metrics) = run_shard_with_metrics(&specs, &my, &domino, &opts);
            if let Err(e) = std::fs::write(&out, report.encode()) {
                eprintln!("cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            if let Some(m) = metrics {
                // Only the deterministic section goes to disk: CI plain-
                // diffs these files across shard counts, thread counts, and
                // multiplex widths.
                let path = format!("{out}.metrics");
                if let Err(e) = std::fs::write(&path, m.encode_sim()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("[sharded_sweep] wrote {path}");
            }
            eprintln!(
                "[sharded_sweep] wrote {out}: {} specs, {} chain windows, {:.1} min of calls",
                report.outcomes.len(),
                report.aggregate.total_chain_windows,
                report.aggregate.minutes
            );
        }
        "merge" => {
            if inputs.is_empty() {
                return usage();
            }
            let mut reports = Vec::with_capacity(inputs.len());
            for path in &inputs {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match ShardReport::parse(&text) {
                    Ok(r) => reports.push(r),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let merged = match merge_shards(&reports) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("merge failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = std::fs::write(&out, merged.encode()) {
                eprintln!("cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            // Fold sibling metrics files (written by `run --obs`) into one
            // snapshot. Sim-section merging is order-free, so the merged
            // file is byte-identical to a single-shard run's.
            let mut metrics: Option<MetricsSnapshot> = None;
            for path in &inputs {
                let mpath = format!("{path}.metrics");
                let Ok(text) = std::fs::read_to_string(&mpath) else {
                    continue;
                };
                let snap = match MetricsSnapshot::parse(&text) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("{mpath}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                metrics = Some(match metrics.take() {
                    Some(mut acc) => {
                        acc.merge(&snap);
                        acc
                    }
                    None => snap,
                });
            }
            if let Some(m) = metrics {
                let path = format!("{out}.metrics");
                if let Err(e) = std::fs::write(&path, m.encode_sim()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("[sharded_sweep] wrote {path}");
            }
            eprintln!(
                "[sharded_sweep] merged {} shard(s) into {out}: {} specs, {} chain windows",
                reports.len(),
                merged.outcomes.len(),
                merged.aggregate.total_chain_windows
            );
        }
        // A long-running sweep service: bind a TCP transport, spawn worker
        // subprocesses against it, and survive their failures. The merged
        // report is byte-identical to `run --shards 1` on the same grid —
        // CI's coordinator-chaos job diffs exactly that, with one worker
        // scripted to crash mid-range and one to corrupt its first report.
        "coordinator" => {
            let specs = match grid.as_str() {
                "shared" => shared_grid(),
                "abr" => abr_grid(),
                "chaos" => chaos_grid(),
                _ => demo_grid(),
            };
            let mut transport = match TcpTransport::bind() {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot bind coordinator socket: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let port = transport.port();
            let exe = match std::env::current_exe() {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("cannot locate own binary: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let spawn = {
                let exe = exe.clone();
                let grid = grid.clone();
                move |faults: &[&str]| {
                    let mut cmd = std::process::Command::new(&exe);
                    cmd.arg("worker")
                        .arg("--connect")
                        .arg(format!("127.0.0.1:{port}"))
                        .arg("--grid")
                        .arg(&grid)
                        .arg("--threads")
                        .arg(threads.to_string())
                        .arg("--mux-width")
                        .arg(mux_width.to_string());
                    for f in faults {
                        cmd.arg(f);
                    }
                    cmd.spawn()
                }
            };
            let children = Arc::new(Mutex::new(Vec::new()));
            for i in 0..workers {
                // The kill-retry chaos preset scripts worker 0 to crash on
                // the first spec it starts and worker 1 to flip a byte in
                // its first report. Paired with min_workers + prefetch 1
                // below, every worker is guaranteed a dispatch, so the
                // death, the steal, and the corruption all happen on every
                // run regardless of TCP connection order.
                let faults: Vec<&str> = match chaos.as_deref() {
                    Some("kill-retry") if i == 0 => vec!["--exit-after-specs", "0"],
                    Some("kill-retry") if i == 1 => vec!["--corrupt-first-result"],
                    _ => vec![],
                };
                match spawn(&faults) {
                    Ok(c) => children.lock().unwrap().push(c),
                    Err(e) => {
                        eprintln!("cannot spawn worker {i}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            // Crashed workers get fault-free replacements, so the sweep
            // finishes even if every scripted worker dies. Capped so a
            // misbehaving fleet can't fork-bomb the host.
            {
                let children = Arc::clone(&children);
                let spawn = spawn.clone();
                let mut respawned = 0usize;
                transport.set_on_disconnect(move |_deaths| {
                    if respawned >= 4 {
                        return;
                    }
                    respawned += 1;
                    if let Ok(c) = spawn(&[]) {
                        children.lock().unwrap().push(c);
                    }
                });
            }
            let cfg = CoordinatorConfig {
                chunk_specs: chunk,
                // Wait for the whole spawned fleet before dispatching, and
                // under chaos keep prefetch at 1 so the scripted workers
                // are guaranteed to receive work (see the preset above).
                min_workers: workers,
                prefetch: if chaos.is_some() { 1 } else { 2 },
                ..Default::default()
            };
            let outcome = run_coordinator(specs.len(), &mut transport, &cfg, |p| {
                eprintln!(
                    "[coordinator] {}/{} ranges ({}/{} specs) done, {} worker(s), {} in flight, {} chain windows",
                    p.ranges_done,
                    p.ranges_total,
                    p.specs_done,
                    p.specs_total,
                    p.workers,
                    p.in_flight,
                    p.chain_windows,
                );
            });
            drop(transport); // close worker links before reaping
            let mut kids = children.lock().unwrap();
            for c in kids.iter_mut() {
                let _ = c.kill();
                let _ = c.wait();
            }
            let run = match outcome {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("coordinated sweep failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = std::fs::write(&out, run.report.encode()) {
                eprintln!("cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            if let Some(path) = stats_out {
                if let Err(e) = std::fs::write(&path, run.stats.encode()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("[coordinator] wrote {path}");
            }
            eprintln!(
                "[coordinator] wrote {out}: {} specs, {} chain windows; {} dispatches, \
                 {} deaths, {} steals, {} corrupt, {} duplicates, {} retries",
                run.report.outcomes.len(),
                run.report.aggregate.total_chain_windows,
                run.stats.dispatches,
                run.stats.worker_deaths,
                run.stats.steals,
                run.stats.corrupt_reports,
                run.stats.duplicates_discarded,
                run.stats.retries,
            );
        }
        "worker" => {
            let Some(addr) = connect else {
                return usage();
            };
            let specs = match grid.as_str() {
                "shared" => shared_grid(),
                "abr" => abr_grid(),
                "chaos" => chaos_grid(),
                _ => demo_grid(),
            };
            let domino = Domino::with_defaults();
            let opts = SweepOptions::default()
                .threads(threads)
                .mode(if mux_width > 1 {
                    ExecutionMode::Multiplexed { width: mux_width }
                } else {
                    ExecutionMode::PerWorker
                });
            let opts = if grid == "chaos" {
                opts.analysis(AnalysisMode::Live)
            } else {
                opts
            };
            let mut link = match TcpLink::connect(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("cannot connect to coordinator at {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let faults = WorkerFaults {
                exit_after_specs,
                corrupt_first_result,
            };
            let name = format!("worker-{}", std::process::id());
            match run_worker(&mut link, &name, &specs, &domino, &opts, faults) {
                WorkerExit::Drained => {
                    eprintln!("[{name}] drained, exiting");
                }
                WorkerExit::Killed => {
                    // Scripted crash: die abruptly, result unsent.
                    eprintln!("[{name}] scripted kill fired");
                    std::process::exit(3);
                }
                WorkerExit::Link(e) => {
                    eprintln!("[{name}] link failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
