//! Extensibility demo (paper §4.2 "Extensibility of Domino", Fig. 11):
//! define new causal chains in the text DSL, compile them to an executable
//! detection program, and emit the generated Python/Rust source.
//!
//! ```text
//! cargo run --release --example custom_chains
//! ```

use domino::core::{compile, parse, Domino, DominoConfig};
use domino::scenarios::{tmobile_fdd_15mhz_quiet, SessionConfig, SessionRun};
use domino::simcore::{SimDuration, SimTime};
use domino::telemetry::Direction;

// Exactly the paper's Fig. 11 input, plus one chain of our own that traces
// congestion-window exhaustion to downlink cross traffic.
const CONFIG: &str = "
dl_rlc_retx --> forward_delay_up --> local_jitter_buffer_drain
dl_harq_retx --> forward_delay_up --> local_jitter_buffer_drain
dl_cross_traffic --> reverse_delay_up --> local_cwnd_full
";

fn main() {
    let graph = parse(CONFIG).expect("config parses");
    println!(
        "parsed graph: {} nodes, {} chains",
        graph.node_count(),
        graph.enumerate_chains().len()
    );

    // Generate code from the definition, as Fig. 11 does.
    let program = compile(&graph);
    println!(
        "---- generated Python ----\n{}",
        program.emit_python(&graph)
    );
    println!("---- generated Rust  ----\n{}", program.emit_rust(&graph));

    // Run the custom detector on a session with a scripted DL cross-traffic
    // episode that should trip the new chain.
    let cfg = SessionConfig {
        duration: SimDuration::from_secs(30),
        seed: 99,
        ..Default::default()
    };
    let bundle = SessionRun::cell(tmobile_fdd_15mhz_quiet(), &cfg)
        .script(|cell| {
            cell.script_cross_traffic(
                Direction::Downlink,
                SimTime::from_secs(12),
                SimTime::from_secs(15),
                0.99,
            );
        })
        .run();

    let domino = Domino::new(graph, DominoConfig::default());
    let analysis = domino.analyze(&bundle);
    let mut hits = 0;
    for w in &analysis.windows {
        for chain in &w.chains {
            let path: Vec<&str> = chain.path.iter().map(|&n| domino.graph().name(n)).collect();
            println!("t={:>7} detected: {}", w.start, path.join(" --> "));
            hits += 1;
        }
    }
    println!(
        "{hits} chain detections in {} windows",
        analysis.windows.len()
    );
}
