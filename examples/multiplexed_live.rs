//! Operator-scale concurrent diagnosis: 16 staggered calls multiplexed
//! through ONE live diagnoser — one shared `SessionArena`, one shared
//! tagged `SharedRouteQueue`, and one session-keyed `PipelinePool` whose
//! reorder buffers, staging bundles, and streaming analyzers are recycled
//! across call starts and ends.
//!
//! This drives the raw stepping API directly (`SessionSpec::start_in` +
//! `begin_tick` / `route_event` / `end_tick` / `finish`) — the same
//! machinery `domino-sweep`'s `ExecutionMode::Multiplexed` wraps — so the
//! scheduling is visible: a new call is admitted every 2 s of global time
//! while a slot is free, early-exit triage ends calls at irregular
//! instants, and freed slots (and their warm pipelines) go straight to the
//! next caller. Every call's verdicts are byte-identical to what a
//! dedicated solo pipeline would have produced (the multiplex determinism
//! suite proves it); this example prints each call's verdict timeline and
//! the peak retained footprint of the whole 16-call fleet.
//!
//! ```text
//! cargo run --release --example multiplexed_live
//! ```

use domino::core::default_graph;
use domino::live::{EarlyExit, LiveConfig, LiveVerdict, PipelinePool};
use domino::scenarios::{
    all_cells, ScriptAction, SessionArena, SessionConfig, SessionSpec, SessionState,
    SharedRouteQueue,
};
use domino::simcore::{SimDuration, SimTime};
use domino::telemetry::{Direction, Lateness};

const CALLS: usize = 16;
const WIDTH: usize = 6;

/// The fleet: 16 calls over the Table 1 cells; every third call carries a
/// downlink cross-traffic surge and every fifth an RRC release, so the
/// verdict mix spans healthy, congested, and outage calls.
fn fleet() -> Vec<SessionSpec> {
    let cells = all_cells();
    (0..CALLS)
        .map(|i| {
            let mut spec = SessionSpec::cell(
                cells[i % cells.len()].clone(),
                SessionConfig {
                    duration: SimDuration::from_secs(35),
                    seed: 4_100 + i as u64,
                    ..Default::default()
                },
            );
            if i % 3 == 1 {
                spec = spec.with_script(ScriptAction::CrossTraffic {
                    dir: Direction::Downlink,
                    from: SimTime::from_secs(8),
                    to: SimTime::from_secs(14),
                    prb_fraction: 0.96,
                });
            }
            if i % 5 == 2 {
                spec = spec.with_script(ScriptAction::RrcRelease {
                    at: SimTime::from_secs(18),
                });
            }
            spec
        })
        .collect()
}

struct Call {
    id: usize,
    state: SessionState,
    offset: SimDuration,
}

fn timeline(graph: &domino::core::CausalGraph, verdicts: &[LiveVerdict]) -> Vec<String> {
    verdicts
        .iter()
        .filter(|v| v.changed)
        .map(|v| {
            let mut lines: Vec<String> = v
                .chains
                .iter()
                .map(|c| {
                    c.path
                        .iter()
                        .map(|&n| graph.name(n))
                        .collect::<Vec<_>>()
                        .join(" --> ")
                })
                .chain(
                    v.unknown_consequences
                        .iter()
                        .map(|&u| format!("{} (cause unknown)", graph.name(u))),
                )
                .collect();
            lines.sort();
            lines.dedup();
            let what = if lines.is_empty() {
                "healthy".to_string()
            } else {
                lines.join("; ")
            };
            format!("t={:>5.1}s  {what}", v.emitted_at.as_secs_f64())
        })
        .collect()
}

fn main() {
    let specs = fleet();
    let graph = default_graph();
    // Triage configuration: tight lateness, exit once the verdict has been
    // stable for 6 windows — healthy calls free their slot early, exactly
    // how a fleet diagnoser sheds load.
    let live_cfg = LiveConfig {
        lateness: Lateness::Static(SimDuration::from_secs(1)),
        early_exit: EarlyExit::StableFor(6),
    };

    let mut arena = SessionArena::new();
    let mut shared = SharedRouteQueue::new();
    let mut pool = PipelinePool::with_defaults(live_cfg).expect("default config is aligned");

    let tick = specs[0].cfg.tick;
    let admission_gap = SimDuration::from_secs(2);
    let mut next_admission = SimTime::ZERO;
    let mut next_spec = 0usize;
    let mut active: Vec<Call> = Vec::new();
    let mut global = SimTime::ZERO;
    let mut peak_footprint = 0usize;
    let mut completed = 0usize;

    println!("== multiplexed live diagnosis: {CALLS} calls, width {WIDTH} ==\n");
    while next_spec < specs.len() || !active.is_empty() {
        // Staggered admission: at most one new call per 2 s global, while a
        // slot (and therefore a pooled pipeline) is free.
        if next_spec < specs.len() && active.len() < WIDTH && global >= next_admission {
            let id = next_spec;
            next_spec += 1;
            pool.checkout(id as u64);
            let state = specs[id].start_in(true, &mut arena);
            println!(
                "[{:>5.1}s] + call {id:02} admitted ({}), {} in flight, pool free {}",
                global.as_secs_f64(),
                specs[id].label,
                active.len() + 1,
                pool.free_len(),
            );
            active.push(Call {
                id,
                state,
                offset: global - SimTime::ZERO,
            });
            next_admission = global + admission_gap;
        }
        global += tick;

        // Phase 1–2 for every in-flight call, route events into the shared
        // tagged queue at global time.
        for c in active.iter_mut() {
            let tap = pool.get_mut(c.id as u64).expect("leased at admission");
            let mut sink = shared.sink(c.id as u64, c.offset);
            c.state.begin_tick(tap, arena.scratch_mut(), &mut sink);
        }
        // Phase 3: one global drain in (time, session, seq) order.
        while let Some((at, tag, ev)) = shared.pop_due(global) {
            let Some(c) = active.iter_mut().find(|c| c.id as u64 == tag) else {
                continue; // stale event of a finished call
            };
            let tap = pool.get_mut(tag).expect("leased at admission");
            c.state.route_event(at - c.offset, ev, tap);
        }
        // Phase 4–5; finished calls print their timeline and free the slot.
        let mut i = 0;
        while i < active.len() {
            let c = &mut active[i];
            let tap = pool.get_mut(c.id as u64).expect("leased at admission");
            if c.state.end_tick(tap, arena.scratch_mut()) {
                let c = active.swap_remove(i);
                let tap = pool.get_mut(c.id as u64).expect("leased at admission");
                let bundle = c.state.finish(tap, &mut arena);
                let pipe = pool.get_mut(c.id as u64).expect("leased at admission");
                let verdicts = pipe.drain_verdicts();
                let _ = pipe.take_analysis(bundle.meta.duration);
                let stats = pool.release(c.id as u64).expect("leased");
                completed += 1;
                println!(
                    "[{:>5.1}s] - call {:02} done after {:>4.1}s ({} windows, {}): ",
                    global.as_secs_f64(),
                    c.id,
                    bundle.meta.duration.as_secs_f64(),
                    stats.windows_emitted,
                    if stats.early_exited {
                        "verdict stable, exited early"
                    } else {
                        "ran to completion"
                    },
                );
                for line in timeline(&graph, &verdicts) {
                    println!("            {line}");
                }
                arena.recycle(bundle);
            } else {
                i += 1;
            }
        }
        peak_footprint = peak_footprint.max(arena.footprint() + shared.capacity());
    }

    let stats = pool.stats();
    println!("\n== fleet summary ==");
    println!("  calls completed        {completed}");
    println!(
        "  pipelines built/reused {}/{} (evicted {})",
        stats.created, stats.reused, stats.evicted
    );
    println!(
        "  peak shared footprint  {peak_footprint} retained elements \
         (SessionArena::footprint + shared queue capacity, all {CALLS} calls)"
    );
}
